package core

import (
	"errors"
	"fmt"
	"math"
)

// Typed errors for the delta operations (ApplyJoin / ApplyLeave /
// ApplyMove). Control planes route these to client-visible conflict
// responses, so they must be matchable with errors.Is.
var (
	// ErrAlreadyAssigned reports a join for a client that is already
	// assigned to a server.
	ErrAlreadyAssigned = errors.New("core: client already assigned")
	// ErrNotAssigned reports a leave or migrate for a client that is not
	// currently assigned.
	ErrNotAssigned = errors.New("core: client not assigned")
)

// EvaluatorStats counts the work the evaluator has performed, split by
// kind. The counters separate the O(world) operations (full pair-scan
// recomputes, linear eccentricity repair scans) from the bounded ones
// (heap settles, per-server pair touches), so tests can assert that a
// given operation sequence stayed on the incremental path — and that
// no-op moves perform no repair work at all.
type EvaluatorStats struct {
	// Recomputes counts full MaxPathEcc pair scans (legacy path only).
	Recomputes int
	// EccScans counts O(|C|) eccentricity repair scans (legacy path
	// only).
	EccScans int
	// HeapOps counts per-server distance-heap pushes and removals
	// (incremental path).
	HeapOps int
	// PairTouches counts O(1) candidate updates of another server's
	// cached best pair value (incremental path).
	PairTouches int
	// PairRescans counts O(U) rebuilds of one server's best pair value
	// (incremental path; needed when a cached witness goes stale).
	PairRescans int
}

// DeltaEvent describes one applied delta operation: what moved, the
// resulting D, and the incremental work it cost (stats deltas for this
// event alone). Consumers attribute per-event evaluator work to traces
// without core importing any observability package.
type DeltaEvent struct {
	// Op is "join", "leave", or "move".
	Op string
	// Client is the client that moved; Server its new server (Unassigned
	// for a leave).
	Client, Server int
	// D is the maintained global D after the event.
	D float64
	// HeapOps, PairTouches, and PairRescans are this event's share of the
	// corresponding EvaluatorStats counters.
	HeapOps, PairTouches, PairRescans int
}

// SetDeltaHook installs fn to observe every ApplyJoin / ApplyLeave /
// ApplyMove (nil removes it). The hook fires synchronously after the
// delta is applied; it must not mutate the evaluator. Plain Move calls
// (batch solvers, strategy repairs) do not fire it — the hook attributes
// control-plane events, not search iterations.
func (ev *Evaluator) SetDeltaHook(fn func(DeltaEvent)) { ev.deltaHook = fn }

// applyTracked runs one delta through the incremental engine and feeds
// the hook, measuring the per-event work only when someone is listening.
//
//dialint:hotpath
func (ev *Evaluator) applyTracked(op string, c, s int) float64 {
	if ev.deltaHook == nil {
		return ev.moveIncremental(c, s)
	}
	before := ev.stats
	d := ev.moveIncremental(c, s)
	ev.deltaHook(DeltaEvent{
		Op:          op,
		Client:      c,
		Server:      s,
		D:           d,
		HeapOps:     ev.stats.HeapOps - before.HeapOps,
		PairTouches: ev.stats.PairTouches - before.PairTouches,
		PairRescans: ev.stats.PairRescans - before.PairRescans,
	})
	return d
}

// Stats returns the work counters accumulated so far.
func (ev *Evaluator) Stats() EvaluatorStats { return ev.stats }

// ResetStats zeroes the work counters.
func (ev *Evaluator) ResetStats() { ev.stats = EvaluatorStats{} }

// IncrementalEnabled reports whether the evaluator maintains D with the
// incremental engine.
func (ev *Evaluator) IncrementalEnabled() bool { return ev.inc != nil }

// EnableIncremental switches the evaluator to incremental D
// maintenance: per-server eccentricities are backed by lazy-deletion
// max-heaps over client distances, and D is maintained through cached
// per-server best pair values under a lazy global max-heap, so a churn
// event (join, leave, migrate) costs O(U + log) instead of the O(|C| +
// U²) full rescan. The maintained D is bit-identical to what
// recompute() produces for the same assignment (both take maxima over
// the same canonical pair sums — see pairPath). Enabling is idempotent
// and valid in any state; Move, ApplyJoin, ApplyLeave, ApplyMove, and
// PeekMove all route through the engine once enabled.
func (ev *Evaluator) EnableIncremental() {
	if ev.inc != nil {
		return
	}
	ns := ev.in.NumServers()
	st := &incState{
		ev:       ev,
		trackers: make([]maxTracker, ns),
		contrib:  make([]float64, ns),
		argmax:   make([]int, ns),
		usedPos:  make([]int, ns),
		ver:      make([]uint64, ns),
	}
	for k := 0; k < ns; k++ {
		st.usedPos[k] = -1
		st.argmax[k] = -1
	}
	for c, s := range ev.a {
		if s != Unassigned {
			st.trackers[s].push(ev.in.cs[c][s])
		}
	}
	for k := 0; k < ns; k++ {
		if ev.ecc[k] >= 0 {
			st.addUsed(k)
		}
	}
	for _, s := range st.used {
		st.rescan(s)
	}
	ev.inc = st
	ev.d = st.currentD()
	ev.dirty = false
}

// ApplyJoin assigns the currently-unassigned client c to server s and
// returns the new D. The evaluator switches to incremental maintenance
// if it has not already.
func (ev *Evaluator) ApplyJoin(c, s int) (float64, error) {
	if err := ev.checkDelta(c, s); err != nil {
		return 0, err
	}
	if s == Unassigned {
		return 0, fmt.Errorf("core: join of client %d: target must be a server", c)
	}
	if ev.a[c] != Unassigned {
		return 0, fmt.Errorf("%w: join of client %d (on server %d)", ErrAlreadyAssigned, c, ev.a[c])
	}
	ev.EnableIncremental()
	return ev.applyTracked("join", c, s), nil
}

// ApplyLeave removes client c from its server and returns the new D.
func (ev *Evaluator) ApplyLeave(c int) (float64, error) {
	if err := ev.checkDelta(c, Unassigned); err != nil {
		return 0, err
	}
	if ev.a[c] == Unassigned {
		return 0, fmt.Errorf("%w: leave of client %d", ErrNotAssigned, c)
	}
	ev.EnableIncremental()
	return ev.applyTracked("leave", c, Unassigned), nil
}

// ApplyMove migrates the currently-assigned client c to server s and
// returns the new D. Moving a client to its current server is a no-op
// and performs no repair work.
func (ev *Evaluator) ApplyMove(c, s int) (float64, error) {
	if err := ev.checkDelta(c, s); err != nil {
		return 0, err
	}
	if s == Unassigned {
		return 0, fmt.Errorf("core: migrate of client %d: target must be a server (use ApplyLeave)", c)
	}
	if ev.a[c] == Unassigned {
		return 0, fmt.Errorf("%w: migrate of client %d", ErrNotAssigned, c)
	}
	ev.EnableIncremental()
	return ev.applyTracked("move", c, s), nil
}

func (ev *Evaluator) checkDelta(c, s int) error {
	if c < 0 || c >= len(ev.a) {
		return fmt.Errorf("core: client %d out of range [0,%d)", c, len(ev.a))
	}
	if s != Unassigned && (s < 0 || s >= ev.in.NumServers()) {
		return fmt.Errorf("core: server %d out of range [0,%d)", s, ev.in.NumServers())
	}
	return nil
}

// moveIncremental is the incremental counterpart of Move: the affected
// servers' eccentricities are repaired through their distance heaps and
// the global max is repaired through the cached pair values, with no
// O(|C|) scan and no O(U²) pair walk.
//
//dialint:hotpath
func (ev *Evaluator) moveIncremental(c, s int) float64 {
	st := ev.inc
	old := ev.a[c]
	if old == s {
		return ev.d
	}
	if old != Unassigned {
		ev.loads[old]--
		st.trackers[old].remove(ev.in.cs[c][old])
		ev.stats.HeapOps++
		if ne := st.trackers[old].max(); math.Float64bits(ne) != math.Float64bits(ev.ecc[old]) {
			ev.ecc[old] = ne
			st.eccChanged(old, true)
		}
	}
	ev.a[c] = s
	if s != Unassigned {
		ev.loads[s]++
		wasUsed := ev.ecc[s] >= 0
		st.trackers[s].push(ev.in.cs[c][s])
		ev.stats.HeapOps++
		if v := ev.in.cs[c][s]; v > ev.ecc[s] {
			ev.ecc[s] = v
			st.eccChanged(s, wasUsed)
		}
	}
	ev.d = st.currentD()
	return ev.d
}

// incState is the incremental D engine. Invariants, maintained after
// every delta operation:
//
//   - trackers[s] holds the multiset of distances from server s to its
//     assigned clients; its max equals ev.ecc[s] bit-for-bit (-1 when
//     empty, matching the legacy repair scan).
//   - used lists exactly the servers with at least one client
//     (ev.ecc[s] >= 0); usedPos is its inverse (-1 when unused).
//   - For every used s, contrib[s] = max over used t of pairPath(s, t)
//     (t = s included: the degenerate one-server path), and argmax[s]
//     is a witness partner attaining it.
//   - top is a lazy max-heap over (contrib[s], s, ver[s]); entries
//     whose version does not match ver[s] are stale and skipped, so
//     the live top of the heap is D.
//
// Repair cost per eccentricity change is O(U) touches plus O(U) per
// witness-invalidated rescan; rescans are only needed when an
// eccentricity decreases (an increase of ecc[s] can only improve pairs
// involving s, because float64 addition is monotone in each argument).
type incState struct {
	ev       *Evaluator
	trackers []maxTracker
	contrib  []float64
	argmax   []int
	used     []int
	usedPos  []int
	ver      []uint64
	top      []topEntry
}

type topEntry struct {
	d   float64
	s   int
	ver uint64
}

// pairPath returns the canonical interaction-path value for used
// servers s and t: the lower-indexed server's eccentricity enters the
// sum first, exactly as perfkit.MaxPathEcc associates it, so maxima
// over these values are bit-identical to a full recompute.
func (st *incState) pairPath(s, t int) float64 {
	if s > t {
		s, t = t, s
	}
	return st.ev.ecc[s] + st.ev.in.ss[s][t] + st.ev.ecc[t]
}

func (st *incState) addUsed(s int) {
	st.usedPos[s] = len(st.used)
	st.used = append(st.used, s)
}

func (st *incState) removeUsed(s int) {
	i := st.usedPos[s]
	last := len(st.used) - 1
	st.used[i] = st.used[last]
	st.usedPos[st.used[i]] = i
	st.used = st.used[:last]
	st.usedPos[s] = -1
}

// rescan rebuilds contrib[s] from scratch over the used list.
func (st *incState) rescan(s int) {
	best := math.Inf(-1)
	arg := -1
	for _, t := range st.used {
		if v := st.pairPath(s, t); v > best {
			best, arg = v, t
		}
	}
	st.contrib[s], st.argmax[s] = best, arg
	st.push(s)
	st.ev.stats.PairRescans++
}

// push publishes contrib[s] to the global heap under a fresh version,
// implicitly retiring any earlier entry for s.
func (st *incState) push(s int) {
	st.ver[s]++
	st.top = append(st.top, topEntry{d: st.contrib[s], s: s, ver: st.ver[s]})
	st.siftUp(len(st.top) - 1)
	// Lazy deletion lets retired entries pile up; once the heap is far
	// larger than one live entry per used server, rebuild it from the
	// live contribs (deterministic: iterates the used list).
	if len(st.top) > 4*len(st.used)+64 {
		st.top = st.top[:0]
		for _, t := range st.used {
			st.top = append(st.top, topEntry{d: st.contrib[t], s: t, ver: st.ver[t]})
		}
		for i := len(st.top)/2 - 1; i >= 0; i-- {
			st.siftDown(i)
		}
	}
}

// currentD pops stale entries off the global heap and returns the live
// maximum (0 with no used servers, matching MaxPathEcc).
func (st *incState) currentD() float64 {
	for len(st.top) > 0 {
		e := st.top[0]
		if st.ver[e.s] == e.ver {
			return e.d
		}
		last := len(st.top) - 1
		st.top[0] = st.top[last]
		st.top = st.top[:last]
		if len(st.top) > 0 {
			st.siftDown(0)
		}
	}
	return 0
}

func (st *incState) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if st.top[i].d <= st.top[p].d {
			return
		}
		st.top[i], st.top[p] = st.top[p], st.top[i]
		i = p
	}
}

func (st *incState) siftDown(i int) {
	n := len(st.top)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && st.top[l].d > st.top[m].d {
			m = l
		}
		if r < n && st.top[r].d > st.top[m].d {
			m = r
		}
		if m == i {
			return
		}
		st.top[i], st.top[m] = st.top[m], st.top[i]
		i = m
	}
}

// eccChanged repairs the pair caches after ev.ecc[s] was updated.
// wasUsed is whether s had clients before the change.
func (st *incState) eccChanged(s int, wasUsed bool) {
	nowUsed := st.ev.ecc[s] >= 0
	switch {
	case !wasUsed && nowUsed:
		// s enters the used set: compute its own best pair, and offer the
		// new pairs (t, s) to every other used server. A new pair can only
		// raise another server's max, never invalidate it.
		st.addUsed(s)
		st.rescan(s)
		for _, t := range st.used {
			if t == s {
				continue
			}
			st.ev.stats.PairTouches++
			if v := st.pairPath(t, s); v >= st.contrib[t] {
				st.contrib[t], st.argmax[t] = v, s
				st.push(t)
			}
		}
	case wasUsed && !nowUsed:
		// s leaves the used set: retire its heap entries and rebuild any
		// server whose cached witness was s.
		st.removeUsed(s)
		st.ver[s]++
		for _, t := range st.used {
			st.ev.stats.PairTouches++
			if st.argmax[t] == s {
				st.rescan(t)
			}
		}
	case wasUsed && nowUsed:
		// s stays used with a new eccentricity: its own best pair is
		// rebuilt, and every other server re-evaluates its pair with s. If
		// that pair now beats the cached max it becomes the new witness;
		// if it shrank and s was the witness, only then is a rescan
		// needed (float64 addition is monotone, so no other pair moved).
		st.rescan(s)
		for _, t := range st.used {
			if t == s {
				continue
			}
			st.ev.stats.PairTouches++
			v := st.pairPath(t, s)
			switch {
			case v >= st.contrib[t]:
				st.contrib[t], st.argmax[t] = v, s
				st.push(t)
			case st.argmax[t] == s:
				st.rescan(t)
			}
		}
	}
}

// maxTracker is a lazy-deletion max-heap over float64 distances: the
// multiset of distances from one server to its clients. remove defers
// deletions into a shadow heap and cancels them when they reach the
// top, so both operations are O(log n) amortized. Distances are
// compared for cancellation by their exact bit patterns — a removed
// value is always one that was previously pushed, so bit equality is
// the correct (and deterministic) match.
type maxTracker struct {
	live floatMaxHeap
	dead floatMaxHeap
}

func (t *maxTracker) push(v float64) {
	t.live.push(v)
	t.settle()
}

func (t *maxTracker) remove(v float64) {
	t.dead.push(v)
	t.settle()
}

// settle cancels deferred deletions sitting at the top of both heaps.
func (t *maxTracker) settle() {
	for len(t.dead) > 0 && len(t.live) > 0 &&
		math.Float64bits(t.live[0]) == math.Float64bits(t.dead[0]) {
		t.live.pop()
		t.dead.pop()
	}
}

// max returns the largest live distance, or -1 when the multiset is
// empty — the same sentinel the eccentricity vector uses for servers
// with no clients.
func (t *maxTracker) max() float64 {
	if len(t.live) == 0 {
		return -1
	}
	return t.live[0]
}

// floatMaxHeap is a plain binary max-heap over float64. Latencies are
// finite and non-negative (the matrix is validated on load), so plain >
// ordering is total here.
type floatMaxHeap []float64

func (h *floatMaxHeap) push(v float64) {
	*h = append(*h, v)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[i] <= a[p] {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *floatMaxHeap) pop() float64 {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	a = *h
	i, n := 0, len(a)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && a[l] > a[m] {
			m = l
		}
		if r < n && a[r] > a[m] {
			m = r
		}
		if m == i {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}
