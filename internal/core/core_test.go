package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"diacap/internal/latency"
)

// smallMatrix builds a 5-node valid matrix:
// nodes 0,1 servers; 2,3,4 clients.
func smallMatrix() latency.Matrix {
	m := latency.NewMatrix(5)
	set := func(i, j int, v float64) { m[i][j], m[j][i] = v, v }
	set(0, 1, 10)
	set(0, 2, 3)
	set(0, 3, 8)
	set(0, 4, 20)
	set(1, 2, 12)
	set(1, 3, 5)
	set(1, 4, 4)
	set(2, 3, 6)
	set(2, 4, 18)
	set(3, 4, 7)
	return m
}

func smallInstance(t testing.TB) *Instance {
	t.Helper()
	in, err := NewInstance(smallMatrix(), []int{0, 1}, []int{2, 3, 4})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	m := smallMatrix()
	cases := []struct {
		name    string
		servers []int
		clients []int
	}{
		{"no servers", nil, []int{2}},
		{"no clients", []int{0}, nil},
		{"server out of range", []int{5}, []int{2}},
		{"negative server", []int{-1}, []int{2}},
		{"client out of range", []int{0}, []int{9}},
		{"duplicate server", []int{0, 0}, []int{2}},
		{"duplicate client", []int{0}, []int{2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewInstance(m, tc.servers, tc.clients); err == nil {
				t.Fatal("NewInstance should fail")
			}
		})
	}
}

func TestNewInstanceRejectsBadMatrix(t *testing.T) {
	m := smallMatrix()
	m[0][1] = -5
	if _, err := NewInstance(m, []int{0}, []int{2}); err == nil {
		t.Fatal("NewInstance should reject invalid matrix")
	}
}

func TestInstanceAccessors(t *testing.T) {
	in := smallInstance(t)
	if in.NumServers() != 2 || in.NumClients() != 3 {
		t.Fatalf("sizes = %d servers, %d clients; want 2, 3", in.NumServers(), in.NumClients())
	}
	if in.ServerNode(1) != 1 || in.ClientNode(2) != 4 {
		t.Fatal("node index accessors wrong")
	}
	if in.ClientServerDist(0, 0) != 3 { // d(node2, node0)
		t.Fatalf("ClientServerDist(0,0) = %v, want 3", in.ClientServerDist(0, 0))
	}
	if in.ServerServerDist(0, 1) != 10 {
		t.Fatalf("ServerServerDist(0,1) = %v, want 10", in.ServerServerDist(0, 1))
	}
	if got := in.ClientServerRow(1); got[0] != 8 || got[1] != 5 {
		t.Fatalf("ClientServerRow(1) = %v, want [8 5]", got)
	}
	if got := in.ServerServerRow(0); got[0] != 0 || got[1] != 10 {
		t.Fatalf("ServerServerRow(0) = %v, want [0 10]", got)
	}
	if in.Matrix().Len() != 5 {
		t.Fatal("Matrix accessor wrong")
	}
}

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment(3)
	if a.Complete() {
		t.Fatal("fresh assignment should be incomplete")
	}
	a[0], a[1], a[2] = 0, 1, 0
	if !a.Complete() {
		t.Fatal("assignment should be complete")
	}
	c := a.Clone()
	c[0] = 1
	if a[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestValidateAssignment(t *testing.T) {
	in := smallInstance(t)
	cases := []struct {
		name    string
		a       Assignment
		wantErr bool
	}{
		{"ok", Assignment{0, 1, 0}, false},
		{"wrong length", Assignment{0, 1}, true},
		{"unassigned", Assignment{0, Unassigned, 1}, true},
		{"out of range", Assignment{0, 1, 2}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := in.Validate(tc.a)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate(%v) = %v, wantErr %v", tc.a, err, tc.wantErr)
			}
		})
	}
}

func TestLoadsAndUsedServers(t *testing.T) {
	in := smallInstance(t)
	a := Assignment{0, 0, Unassigned}
	loads := in.Loads(a)
	if loads[0] != 2 || loads[1] != 0 {
		t.Fatalf("Loads = %v, want [2 0]", loads)
	}
	used := in.UsedServers(a)
	if len(used) != 1 || used[0] != 0 {
		t.Fatalf("UsedServers = %v, want [0]", used)
	}
}

func TestInteractionPathValues(t *testing.T) {
	in := smallInstance(t)
	// clients: 0→node2, 1→node3, 2→node4; servers: 0→node0, 1→node1.
	a := Assignment{0, 1, 1}
	// path(c0, c1) = d(2,0) + d(0,1) + d(1,3) = 3 + 10 + 5 = 18
	if got := in.InteractionPath(a, 0, 1); got != 18 {
		t.Fatalf("InteractionPath(0,1) = %v, want 18", got)
	}
	// symmetric
	if got := in.InteractionPath(a, 1, 0); got != 18 {
		t.Fatalf("InteractionPath(1,0) = %v, want 18", got)
	}
	// self path = 2*d(2,0) = 6
	if got := in.InteractionPath(a, 0, 0); got != 6 {
		t.Fatalf("InteractionPath(0,0) = %v, want 6", got)
	}
	// same server: d(3,1) + 0 + d(1,4) = 5 + 4 = 9
	if got := in.InteractionPath(a, 1, 2); got != 9 {
		t.Fatalf("InteractionPath(1,2) = %v, want 9", got)
	}
}

func TestInteractionPathUnassignedPanics(t *testing.T) {
	in := smallInstance(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unassigned client")
		}
	}()
	in.InteractionPath(Assignment{0, Unassigned, 0}, 0, 1)
}

func TestMaxInteractionPathMatchesNaive(t *testing.T) {
	in := smallInstance(t)
	for _, a := range []Assignment{
		{0, 0, 0}, {1, 1, 1}, {0, 1, 1}, {0, 1, 0}, {1, 0, 0},
		{0, Unassigned, 1}, {Unassigned, Unassigned, Unassigned},
	} {
		fast := in.MaxInteractionPath(a)
		naive := in.MaxPathNaive(a)
		if math.Abs(fast-naive) > 1e-9 {
			t.Fatalf("assignment %v: fast D = %v, naive = %v", a, fast, naive)
		}
	}
}

func TestMaxInteractionPathRandomizedAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(30)
		m := latency.ScaledLike(n, seed)
		ns := 2 + rng.Intn(4)
		servers := make([]int, 0, ns)
		clients := make([]int, 0, n-ns)
		perm := rng.Perm(n)
		for i, p := range perm {
			if i < ns {
				servers = append(servers, p)
			} else {
				clients = append(clients, p)
			}
		}
		in, err := NewInstanceTrusted(m, servers, clients)
		if err != nil {
			return false
		}
		a := make(Assignment, len(clients))
		for i := range a {
			a[i] = rng.Intn(ns)
		}
		return math.Abs(in.MaxInteractionPath(a)-in.MaxPathNaive(a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundIsLowerBound(t *testing.T) {
	// The lower bound must not exceed D of any complete assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		m := latency.ScaledLike(n, seed+1000)
		ns := 2 + rng.Intn(3)
		perm := rng.Perm(n)
		in, err := NewInstanceTrusted(m, perm[:ns], perm[ns:])
		if err != nil {
			return false
		}
		lb := in.LowerBound()
		for trial := 0; trial < 5; trial++ {
			a := make(Assignment, in.NumClients())
			for i := range a {
				a[i] = rng.Intn(ns)
			}
			if in.MaxInteractionPath(a) < lb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundBruteForce(t *testing.T) {
	// Cross-check the O(|C||S|²+|C|²|S|) lower bound against direct
	// 4-level enumeration.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(10)
		m := latency.ScaledLike(n, int64(trial))
		ns := 2 + rng.Intn(3)
		perm := rng.Perm(n)
		in, err := NewInstanceTrusted(m, perm[:ns], perm[ns:])
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for i := 0; i < in.NumClients(); i++ {
			for j := 0; j < in.NumClients(); j++ {
				best := math.Inf(1)
				for k := 0; k < ns; k++ {
					for l := 0; l < ns; l++ {
						v := in.ClientServerDist(i, k) + in.ServerServerDist(k, l) + in.ClientServerDist(j, l)
						if v < best {
							best = v
						}
					}
				}
				if best > want {
					want = best
				}
			}
		}
		if got := in.LowerBound(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: LowerBound = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestLowerBoundCached(t *testing.T) {
	in := smallInstance(t)
	first := in.LowerBound()
	second := in.LowerBound()
	if first != second {
		t.Fatal("LowerBound should be deterministic and cached")
	}
}

func TestNormalizedInteractivityAtLeastOne(t *testing.T) {
	in := smallInstance(t)
	for _, a := range []Assignment{{0, 0, 0}, {1, 1, 1}, {0, 1, 1}} {
		if ni := in.NormalizedInteractivity(a); ni < 1-1e-9 {
			t.Fatalf("normalized interactivity %v < 1 for %v", ni, a)
		}
	}
}

func TestCapacities(t *testing.T) {
	in := smallInstance(t)
	caps := UniformCapacities(2, 2)
	if err := in.ValidateCapacities(caps); err != nil {
		t.Fatalf("ValidateCapacities: %v", err)
	}
	if err := in.ValidateCapacities(nil); err != nil {
		t.Fatalf("nil capacities should validate: %v", err)
	}
	if err := in.ValidateCapacities(UniformCapacities(2, 1)); err == nil {
		t.Fatal("total capacity 2 < 3 clients should fail")
	}
	if err := in.ValidateCapacities(Capacities{-1, 5}); err == nil {
		t.Fatal("negative capacity should fail")
	}
	if err := in.ValidateCapacities(Capacities{5}); err == nil {
		t.Fatal("length mismatch should fail")
	}

	ok := Assignment{0, 0, 1}
	if err := in.CheckCapacities(ok, caps); err != nil {
		t.Fatalf("CheckCapacities: %v", err)
	}
	over := Assignment{0, 0, 0}
	if err := in.CheckCapacities(over, caps); err == nil {
		t.Fatal("3 clients on capacity-2 server should fail")
	}
	if err := in.CheckCapacities(over, nil); err != nil {
		t.Fatal("nil capacities never fail")
	}
	if err := in.CheckCapacities(ok, Capacities{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestComputeOffsetsFeasible(t *testing.T) {
	// Theorem (Section II-C): δ = D with the constructed offsets satisfies
	// constraints (i) and (ii), for every assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		m := latency.ScaledLike(n, seed+2000)
		ns := 2 + rng.Intn(4)
		perm := rng.Perm(n)
		in, err := NewInstanceTrusted(m, perm[:ns], perm[ns:])
		if err != nil {
			return false
		}
		a := make(Assignment, in.NumClients())
		for i := range a {
			a[i] = rng.Intn(ns)
		}
		off, err := in.ComputeOffsets(a)
		if err != nil {
			return false
		}
		return len(in.CheckFeasibility(a, off.D, off)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallerDeltaInfeasible(t *testing.T) {
	// δ < D must violate a constraint for any offsets of the constructed
	// form; verify with the canonical offsets.
	in := smallInstance(t)
	a := Assignment{0, 1, 1}
	off, err := in.ComputeOffsets(a)
	if err != nil {
		t.Fatalf("ComputeOffsets: %v", err)
	}
	d := in.MaxInteractionPath(a)
	if off.D != d {
		t.Fatalf("offsets D = %v, want %v", off.D, d)
	}
	violations := in.CheckFeasibility(a, d*0.9, off)
	if len(violations) == 0 {
		t.Fatal("δ < D should violate constraint (i)")
	}
	for _, v := range violations {
		if v.Slack <= 0 {
			t.Fatalf("violation slack %v should be positive", v.Slack)
		}
		if v.String() == "" {
			t.Fatal("violation should render")
		}
	}
}

func TestComputeOffsetsRejectsPartial(t *testing.T) {
	in := smallInstance(t)
	if _, err := in.ComputeOffsets(Assignment{0, Unassigned, 1}); err == nil {
		t.Fatal("ComputeOffsets should reject partial assignments")
	}
}

func TestInteractionTimeSynchronized(t *testing.T) {
	in := smallInstance(t)
	a := Assignment{0, 1, 1}
	off, _ := in.ComputeOffsets(a)
	// With synchronized clients every pairwise interaction time equals δ.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			got := in.InteractionTime(off.D, SynchronizedClients, i, j)
			if got != off.D {
				t.Fatalf("InteractionTime(%d,%d) = %v, want %v", i, j, got, off.D)
			}
		}
	}
}

func TestOffsetsConstraintTightness(t *testing.T) {
	// For the server on the longest interaction path, constraint (i) is
	// tight: some (client, server) pair achieves equality with δ = D.
	in := smallInstance(t)
	a := Assignment{0, 1, 1}
	off, _ := in.ComputeOffsets(a)
	tight := false
	for i, s := range a {
		for l := range off.ServerAhead {
			lhs := in.ClientServerDist(i, s) + in.ServerServerDist(s, l) + off.ServerAhead[l]
			if math.Abs(lhs-off.D) < 1e-9 {
				tight = true
			}
		}
	}
	if !tight {
		t.Fatal("constraint (i) should be tight somewhere at δ = D")
	}
}

func BenchmarkMaxInteractionPath(b *testing.B) {
	m := latency.ScaledLike(500, 1)
	servers := make([]int, 50)
	clients := make([]int, 450)
	for i := range servers {
		servers[i] = i
	}
	for i := range clients {
		clients[i] = 50 + i
	}
	in, err := NewInstanceTrusted(m, servers, clients)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	a := make(Assignment, 450)
	for i := range a {
		a[i] = rng.Intn(50)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.MaxInteractionPath(a)
	}
}

func BenchmarkLowerBound(b *testing.B) {
	m := latency.ScaledLike(400, 1)
	servers := make([]int, 40)
	clients := make([]int, 360)
	for i := range servers {
		servers[i] = i
	}
	for i := range clients {
		clients[i] = 40 + i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := NewInstanceTrusted(m, servers, clients)
		if err != nil {
			b.Fatal(err)
		}
		in.LowerBound()
	}
}
