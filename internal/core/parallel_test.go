package core

import (
	"math"
	"runtime"
	"testing"

	"diacap/internal/latency"
)

// parallelTestInstance is large enough (> parallelMinRows clients) that
// the row fan-out actually spawns workers.
func parallelTestInstance(t *testing.T, seed int64) *Instance {
	t.Helper()
	m := latency.ScaledLike(300, seed)
	servers := make([]int, 8)
	clients := make([]int, 300-8)
	for i := range servers {
		servers[i] = i
	}
	for i := range clients {
		clients[i] = 8 + i
	}
	in, err := NewInstanceTrusted(m, servers, clients)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestParallelRowsMatchSequential pins the fan-out against the
// single-worker path: with GOMAXPROCS forced past 1 (this host may have
// one CPU), LowerBound and MaxPathNaive must reproduce the sequential
// results exactly — same additions in the same per-row order, so
// float-for-float equality is required, and under -race this doubles as
// the data-race test for parallelRows/parallelRowsMax.
func TestParallelRowsMatchSequential(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	for seed := int64(1); seed <= 3; seed++ {
		wide := parallelTestInstance(t, seed)
		a := NewAssignment(wide.NumClients())
		for i := range a {
			a[i] = i % wide.NumServers()
		}

		runtime.GOMAXPROCS(1)
		narrow := parallelTestInstance(t, seed)
		seqLB := narrow.LowerBound()
		seqD := narrow.MaxPathNaive(a)
		runtime.GOMAXPROCS(4)

		if got := wide.LowerBound(); got != seqLB {
			t.Errorf("seed %d: parallel LowerBound %v != sequential %v", seed, got, seqLB)
		}
		if got := wide.MaxPathNaive(a); got != seqD {
			t.Errorf("seed %d: parallel MaxPathNaive %v != sequential %v", seed, got, seqD)
		}
		// Different summation order (ecc(s)+d+ecc(t) vs per-pair sums), so
		// only near-equality holds here.
		if want := wide.MaxInteractionPath(a); math.Abs(want-seqD) > 1e-9 {
			t.Errorf("seed %d: MaxPathNaive %v != MaxInteractionPath %v", seed, seqD, want)
		}
	}
}

// TestParallelRowsSmallInputsStaySequential checks the minRows cutoff.
func TestParallelRowsSmallInputsStaySequential(t *testing.T) {
	calls := 0
	parallelRows(parallelMinRows-1, parallelMinRows, func(start, stride int) {
		calls++
		if start != 0 || stride != 1 {
			t.Errorf("small input fanned out: start=%d stride=%d", start, stride)
		}
	})
	if calls != 1 {
		t.Errorf("fn called %d times, want 1", calls)
	}
	if got := parallelRowsMax(0, parallelMinRows, func(int, int) float64 { return 42 }); got != 42 {
		t.Errorf("zero-row max = %v, want the single sequential call's 42", got)
	}
}
