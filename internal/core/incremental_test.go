package core_test

// Differential battery for the incremental D engine: randomized
// join/leave/migrate sequences where every step's D must be
// bit-identical to the legacy evaluator (full recompute) and to the
// scalar eccentricity reference, and must agree with the client-pair
// walk MaxPathReference at the repo's 1e-9 cross-form tolerance (the
// two decompositions associate the witness sum differently — see
// differential_test.go). Per-server eccentricities and loads are also
// checked bit-for-bit, because the shard plane reconciles the global D
// from exactly those eccentricities.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"diacap/internal/core"
	"diacap/internal/latency"
)

// incCheck drives one randomized op sequence through an incremental
// evaluator, cross-checking against a legacy evaluator replaying the
// same moves. refEvery > 0 additionally checks eccPathReference and
// MaxPathReference every refEvery ops.
func incCheck(t *testing.T, in *core.Instance, seed int64, ops, refEvery int) {
	t.Helper()
	inc, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
	if err != nil {
		t.Fatal(err)
	}
	inc.EnableIncremental()
	legacy, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	var active, inactive []int
	for c := 0; c < in.NumClients(); c++ {
		inactive = append(inactive, c)
	}
	for op := 0; op < ops; op++ {
		var d float64
		switch k := rng.Intn(3); {
		case k == 0 && len(inactive) > 0: // join
			i := rng.Intn(len(inactive))
			c := inactive[i]
			s := rng.Intn(in.NumServers())
			d, err = inc.ApplyJoin(c, s)
			if err != nil {
				t.Fatalf("op %d: join(%d,%d): %v", op, c, s, err)
			}
			legacy.Move(c, s)
			inactive[i] = inactive[len(inactive)-1]
			inactive = inactive[:len(inactive)-1]
			active = append(active, c)
		case k == 1 && len(active) > 0: // leave
			i := rng.Intn(len(active))
			c := active[i]
			d, err = inc.ApplyLeave(c)
			if err != nil {
				t.Fatalf("op %d: leave(%d): %v", op, c, err)
			}
			legacy.Move(c, core.Unassigned)
			active[i] = active[len(active)-1]
			active = active[:len(active)-1]
			inactive = append(inactive, c)
		case len(active) > 0: // migrate (sometimes a no-op on purpose)
			c := active[rng.Intn(len(active))]
			s := rng.Intn(in.NumServers())
			d, err = inc.ApplyMove(c, s)
			if err != nil {
				t.Fatalf("op %d: migrate(%d,%d): %v", op, c, s, err)
			}
			legacy.Move(c, s)
		default:
			continue
		}
		checkBitsEqual(t, "incremental D vs legacy evaluator", d, legacy.D())
		if refEvery > 0 && op%refEvery == 0 {
			a := inc.Assignment()
			checkBitsEqual(t, "incremental D vs ecc reference", d, eccPathReference(in, a))
			if ref := in.MaxPathReference(a); math.Abs(d-ref) > 1e-9 {
				t.Fatalf("op %d: incremental D %v vs MaxPathReference %v: |diff| %g > 1e-9",
					op, d, ref, math.Abs(d-ref))
			}
			for s := 0; s < in.NumServers(); s++ {
				checkBitsEqual(t, "incremental eccentricity", inc.Eccentricity(s), legacy.Eccentricity(s))
				if inc.Load(s) != legacy.Load(s) {
					t.Fatalf("op %d: load[%d] = %d, legacy %d", op, s, inc.Load(s), legacy.Load(s))
				}
			}
		}
	}
	if st := inc.Stats(); st.Recomputes != 0 || st.EccScans != 0 {
		t.Fatalf("incremental evaluator fell back to O(world) work: %+v", inc.Stats())
	}
}

// TestIncrementalDifferential is the acceptance battery: over 10k
// randomized join/leave/migrate ops on synthetic instances (full
// reference checks on every op), plus a Meridian-scale sequence.
func TestIncrementalDifferential(t *testing.T) {
	for _, tc := range []struct {
		nodes, servers int
		seed           int64
		ops, refEvery  int
	}{
		{nodes: 60, servers: 6, seed: 1, ops: 4000, refEvery: 1},
		{nodes: 120, servers: 12, seed: 2, ops: 4000, refEvery: 1},
		{nodes: 200, servers: 25, seed: 3, ops: 4000, refEvery: 5},
	} {
		m, err := latency.SyntheticInternet(latency.DefaultConfig(tc.nodes), tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		in := diffInstance(t, m, tc.servers, tc.seed)
		incCheck(t, in, tc.seed+100, tc.ops, tc.refEvery)
	}
}

// TestIncrementalDifferentialMeridian exercises the engine at serving
// scale (1796 nodes, 80 servers) where the heap and witness-cache
// machinery actually matters.
func TestIncrementalDifferentialMeridian(t *testing.T) {
	if testing.Short() {
		t.Skip("meridian-scale differential in -short mode")
	}
	in := diffInstance(t, latency.MeridianLike(1), 80, 7)
	incCheck(t, in, 11, 3000, 50)
}

// TestIncrementalFromWarmState enables the engine on an evaluator that
// already went through legacy moves, then keeps checking equivalence.
func TestIncrementalFromWarmState(t *testing.T) {
	m := latency.ScaledLike(150, 9)
	in := diffInstance(t, m, 10, 9)
	a := diffAssignment(in, 10, 0.3)
	ev, err := in.NewEvaluator(a)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := in.NewEvaluator(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		c, s := rng.Intn(in.NumClients()), rng.Intn(in.NumServers())
		ev.Move(c, s)
		legacy.Move(c, s)
	}
	ev.EnableIncremental()
	checkBitsEqual(t, "D at enable time", ev.D(), legacy.D())
	for i := 0; i < 2000; i++ {
		c := rng.Intn(in.NumClients())
		s := rng.Intn(in.NumServers() + 1)
		if s == in.NumServers() {
			s = core.Unassigned
		}
		checkBitsEqual(t, "post-enable move", ev.Move(c, s), legacy.Move(c, s))
	}
	for s := 0; s < in.NumServers(); s++ {
		checkBitsEqual(t, "post-enable eccentricity", ev.Eccentricity(s), legacy.Eccentricity(s))
	}
}

// TestIncrementalPeekMove checks PeekMove neutrality on the incremental
// path: a peek must not change D, the assignment, or any eccentricity.
func TestIncrementalPeekMove(t *testing.T) {
	m := latency.ScaledLike(120, 3)
	in := diffInstance(t, m, 8, 3)
	ev, err := in.NewEvaluator(diffAssignment(in, 4, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	ev.EnableIncremental()
	legacy, err := in.NewEvaluator(ev.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		c, s := rng.Intn(in.NumClients()), rng.Intn(in.NumServers())
		checkBitsEqual(t, "peek parity", ev.PeekMove(c, s), legacy.PeekMove(c, s))
		checkBitsEqual(t, "D after peek", ev.D(), legacy.D())
		if ev.ServerOf(c) != legacy.ServerOf(c) {
			t.Fatalf("peek mutated assignment of client %d", c)
		}
	}
}

// TestApplyOpErrors pins the typed errors of the delta API.
func TestApplyOpErrors(t *testing.T) {
	m := latency.ScaledLike(40, 1)
	in := diffInstance(t, m, 4, 1)
	ev, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.ApplyLeave(0); !errors.Is(err, core.ErrNotAssigned) {
		t.Fatalf("leave of inactive client: got %v, want ErrNotAssigned", err)
	}
	if _, err := ev.ApplyMove(0, 1); !errors.Is(err, core.ErrNotAssigned) {
		t.Fatalf("migrate of inactive client: got %v, want ErrNotAssigned", err)
	}
	if _, err := ev.ApplyJoin(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.ApplyJoin(0, 1); !errors.Is(err, core.ErrAlreadyAssigned) {
		t.Fatalf("double join: got %v, want ErrAlreadyAssigned", err)
	}
	if _, err := ev.ApplyJoin(-1, 0); err == nil {
		t.Fatal("out-of-range client accepted")
	}
	if _, err := ev.ApplyJoin(1, in.NumServers()); err == nil {
		t.Fatal("out-of-range server accepted")
	}
	if _, err := ev.ApplyJoin(1, core.Unassigned); err == nil {
		t.Fatal("join to Unassigned accepted")
	}
	if _, err := ev.ApplyMove(0, core.Unassigned); err == nil {
		t.Fatal("migrate to Unassigned accepted")
	}
}

// TestEvaluatorNoOpMoveDoesNoWork is the regression test for the no-op
// fast path: once D is cached, re-assigning a client to its current
// server (Move or PeekMove, legacy or incremental) must perform no
// recompute, no eccentricity scan, and no incremental repair work.
func TestEvaluatorNoOpMoveDoesNoWork(t *testing.T) {
	m := latency.ScaledLike(80, 2)
	in := diffInstance(t, m, 6, 2)
	for _, incremental := range []bool{false, true} {
		ev, err := in.NewEvaluator(diffAssignment(in, 3, 0))
		if err != nil {
			t.Fatal(err)
		}
		if incremental {
			ev.EnableIncremental()
		}
		before := ev.D()
		ev.ResetStats()
		for c := 0; c < in.NumClients(); c++ {
			checkBitsEqual(t, "no-op Move return", ev.Move(c, ev.ServerOf(c)), before)
			checkBitsEqual(t, "no-op PeekMove return", ev.PeekMove(c, ev.ServerOf(c)), before)
		}
		if st := ev.Stats(); st != (core.EvaluatorStats{}) {
			t.Fatalf("incremental=%v: no-op moves performed repair work: %+v", incremental, st)
		}
	}
}

// FuzzIncrementalOps interprets fuzz bytes as an op tape and replays it
// against the legacy evaluator.
func FuzzIncrementalOps(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 9, 4, 200, 33, 7})
	f.Add(int64(3), []byte{255, 254, 253, 0, 0, 0, 1, 1, 1, 77})
	m := latency.ScaledLike(64, 5)
	f.Fuzz(func(t *testing.T, seed int64, tape []byte) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		in := diffInstance(t, m, 6, seed%16+1)
		inc, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
		if err != nil {
			t.Fatal(err)
		}
		inc.EnableIncremental()
		legacy, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+1 < len(tape); i += 2 {
			c := int(tape[i]) % in.NumClients()
			s := int(tape[i+1])%(in.NumServers()+1) - 1 // -1 = Unassigned
			got := inc.Move(c, s)
			want := legacy.Move(c, s)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("op %d: move(%d,%d): incremental %v != legacy %v", i/2, c, s, got, want)
			}
		}
		a := inc.Assignment()
		if math.Float64bits(inc.D()) != math.Float64bits(eccPathReference(in, a)) {
			t.Fatalf("final D %v != ecc reference %v", inc.D(), eccPathReference(in, a))
		}
	})
}
