package core

import (
	"fmt"
	"math"

	"diacap/internal/perfkit"
)

// Evaluator maintains the maximum interaction-path length D of an
// assignment under incremental client moves. A move costs O(|S| + R)
// where R is the size of the moved client's old server (for eccentricity
// repair), against O(|C| + U²) for a from-scratch MaxInteractionPath —
// the difference matters for local-search algorithms that try thousands
// of moves (TwoPhase, the ablation studies, and external users doing
// online reassignment as clients join and leave).
//
// The evaluator tracks, per server, a multiset of client distances (via
// counts) so eccentricities can be repaired exactly when the farthest
// client leaves.
type Evaluator struct {
	in *Instance
	a  Assignment

	// loads[s] = number of clients on s.
	loads []int
	// ecc[s] = max distance from s to its clients (-1 when empty).
	ecc []float64
	// d = current maximum interaction-path length.
	d float64
	// dirty marks that d must be recomputed (after a move that could
	// lower D, a full pair scan over used servers is needed anyway).
	dirty bool
	// scratch backs the recompute kernel's compaction arrays. An
	// Evaluator is single-goroutine (its whole point is mutable
	// incremental state), so one private arena serves every recompute
	// without allocation.
	scratch *perfkit.Scratch
	// inc, when non-nil, maintains D incrementally (heap-backed
	// eccentricities plus cached pair maxima) instead of through
	// recompute. See EnableIncremental.
	inc *incState
	// stats counts the work performed, split by kind (see
	// EvaluatorStats).
	stats EvaluatorStats
	// deltaHook, when non-nil, observes every applied delta operation
	// (see SetDeltaHook). Kept a plain func field so core stays free of
	// observability dependencies; the cost when unset is one nil check
	// per Apply call.
	deltaHook func(DeltaEvent)
}

// NewEvaluator builds an evaluator over a copy of the assignment (the
// caller's slice is not retained). Partial assignments are allowed;
// unassigned clients contribute nothing until Assign-ed.
func (in *Instance) NewEvaluator(a Assignment) (*Evaluator, error) {
	if len(a) != in.NumClients() {
		return nil, fmt.Errorf("%w: length %d, want %d", ErrInvalidAssignment, len(a), in.NumClients())
	}
	for i, s := range a {
		if s != Unassigned && (s < 0 || s >= in.NumServers()) {
			return nil, fmt.Errorf("%w: client %d on server %d", ErrInvalidAssignment, i, s)
		}
	}
	ev := &Evaluator{
		in:      in,
		a:       a.Clone(),
		loads:   in.Loads(a),
		ecc:     in.Eccentricities(a),
		dirty:   true,
		scratch: new(perfkit.Scratch),
	}
	return ev, nil
}

// Instance returns the instance this evaluator evaluates. Online
// strategies read geometry through it instead of caching their own
// instance pointer, so a caller may re-materialize the instance (e.g.
// after network coordinates drift) and hand the strategies a fresh
// evaluator without rebuilding the strategies themselves.
func (ev *Evaluator) Instance() *Instance { return ev.in }

// Assignment returns a copy of the current assignment.
func (ev *Evaluator) Assignment() Assignment { return ev.a.Clone() }

// ServerOf returns the current server of a client (or Unassigned).
func (ev *Evaluator) ServerOf(c int) int { return ev.a[c] }

// Load returns the number of clients on server s.
func (ev *Evaluator) Load(s int) int { return ev.loads[s] }

// Eccentricity returns the current eccentricity of server s (-1 if no
// clients).
func (ev *Evaluator) Eccentricity(s int) float64 { return ev.ecc[s] }

// D returns the current maximum interaction-path length.
func (ev *Evaluator) D() float64 {
	if ev.dirty {
		ev.recompute()
	}
	return ev.d
}

// recompute rebuilds D from the per-server eccentricities via the
// perfkit pair kernel (bit-identical to the sentinel-skipping double
// loop it replaced — see perfkit.MaxPathEccRef).
func (ev *Evaluator) recompute() {
	ev.stats.Recomputes++
	ev.scratch.Reset()
	ev.d = perfkit.MaxPathEcc(ev.in.ssF, ev.ecc, ev.scratch)
	ev.dirty = false
}

// Move reassigns client c to server s (s may be Unassigned to remove the
// client) and returns the new D.
func (ev *Evaluator) Move(c, s int) float64 {
	if c < 0 || c >= len(ev.a) {
		panic(fmt.Sprintf("core: Move client %d out of range", c))
	}
	if s != Unassigned && (s < 0 || s >= ev.in.NumServers()) {
		panic(fmt.Sprintf("core: Move to server %d out of range", s))
	}
	old := ev.a[c]
	if old == s {
		// No-op move: the assignment is unchanged, so D is too. Return
		// the cached value without marking state dirty — a recompute here
		// would be O(U²) for nothing (see TestEvaluatorNoOpMoveDoesNoWork).
		return ev.D()
	}
	if ev.inc != nil {
		return ev.moveIncremental(c, s)
	}
	if old != Unassigned {
		ev.loads[old]--
		// Repair the old server's eccentricity if c could have defined it.
		if ev.in.cs[c][old] >= ev.ecc[old]-1e-15 {
			ev.stats.EccScans++
			ev.ecc[old] = -1
			for j, sj := range ev.a {
				if j != c && sj == old {
					if v := ev.in.cs[j][old]; v > ev.ecc[old] {
						ev.ecc[old] = v
					}
				}
			}
		}
	}
	ev.a[c] = s
	if s != Unassigned {
		ev.loads[s]++
		if v := ev.in.cs[c][s]; v > ev.ecc[s] {
			ev.ecc[s] = v
		}
	}
	ev.dirty = true
	return ev.D()
}

// PeekMove returns the D that Move(c, s) would produce, without changing
// state. It is O(U) when the move cannot shrink any eccentricity, and
// falls back to a scan otherwise. Peeking a client's current server is
// answered from the cached D without any repair work.
func (ev *Evaluator) PeekMove(c, s int) float64 {
	cur := ev.a[c]
	if cur == s {
		return ev.D()
	}
	d := ev.Move(c, s)
	ev.Move(c, cur)
	return d
}

// MaxPathInvolving returns the length of the longest interaction path
// involving client c under the current assignment, or -1 if c is
// unassigned. Used to find clients on critical paths.
func (ev *Evaluator) MaxPathInvolving(c int) float64 {
	s := ev.a[c]
	if s == Unassigned {
		return -1
	}
	in := ev.in
	best := math.Inf(-1)
	for t := 0; t < in.NumServers(); t++ {
		if ev.ecc[t] < 0 {
			continue
		}
		if v := in.cs[c][s] + in.ss[s][t] + ev.ecc[t]; v > best {
			best = v
		}
	}
	return best
}
