package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"diacap/internal/latency"
	"diacap/internal/shard"
)

func shardServer(t *testing.T) (*Server, *shard.Plane) {
	t.Helper()
	cs, err := latency.GenerateCoords(latency.DefaultConfig(44), 21)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.New(shard.Options{Shards: 2, Servers: cs[:4], Clients: cs[4:]})
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Shard: p}), p
}

func TestShardAssignLifecycle(t *testing.T) {
	s, p := shardServer(t)

	rec := postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "join", Client: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("join: status %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[ShardAssignResponse](t, rec)
	if resp.Epoch != 2 || resp.Server < 0 {
		t.Fatalf("join response: %+v", resp)
	}
	if got := rec.Header().Get(epochHeader); got != "2" {
		t.Fatalf("join %s header = %q", epochHeader, got)
	}
	if resp.CertifiedD < resp.D {
		t.Fatalf("certified %v below exact %v", resp.CertifiedD, resp.D)
	}

	// Double join conflicts without burning an epoch.
	rec = postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "join", Client: 3})
	if rec.Code != http.StatusConflict {
		t.Fatalf("double join: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(epochHeader); got != "2" {
		t.Fatalf("conflict %s header = %q", epochHeader, got)
	}

	rec = postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "migrate", Client: 3, Server: ptr(1)})
	if rec.Code != http.StatusOK {
		t.Fatalf("migrate: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp = decodeBody[ShardAssignResponse](t, rec); resp.Server != 1 {
		t.Fatalf("migrate landed on server %d, want 1", resp.Server)
	}

	rec = postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "leave", Client: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("leave: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp = decodeBody[ShardAssignResponse](t, rec); resp.Server != 1 {
		t.Fatalf("leave vacated server = %d, want 1", resp.Server)
	}

	if p.Current().Active != 0 {
		t.Fatalf("plane still has %d active clients", p.Current().Active)
	}
}

func TestShardAssignErrors(t *testing.T) {
	s, p := shardServer(t)
	cases := []struct {
		name string
		req  ShardAssignRequest
		want int
	}{
		{"unknown op", ShardAssignRequest{Op: "reassign", Client: 0}, http.StatusBadRequest},
		{"unknown client", ShardAssignRequest{Op: "join", Client: 9999}, http.StatusBadRequest},
		{"leave inactive", ShardAssignRequest{Op: "leave", Client: 0}, http.StatusConflict},
		{"migrate inactive", ShardAssignRequest{Op: "migrate", Client: 0, Server: ptr(0)}, http.StatusConflict},
	}
	for _, tc := range cases {
		if rec := postJSON(t, s, "/v1/shard/assign", tc.req); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}
	// Migration onto a dead server is a state conflict.
	if _, err := p.Join(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.KillServer(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "migrate", Client: 0, Server: ptr(2)})
	if rec.Code != http.StatusConflict {
		t.Fatalf("migrate to dead server: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestShardSnapshotConditionalRead(t *testing.T) {
	s, p := shardServer(t)
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	rec := get("/v1/shard/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", rec.Code, rec.Body.String())
	}
	snap := decodeBody[ShardSnapshotResponse](t, rec)
	if snap.Epoch != 1 || snap.Active != 0 || len(snap.Assignment) != p.NumClients() {
		t.Fatalf("initial snapshot: %+v", snap)
	}

	if _, err := p.Join(context.Background(), 7); err != nil {
		t.Fatal(err)
	}

	// The retired epoch is rejected with the live epoch in the header.
	rec = get("/v1/shard/snapshot?epoch=1")
	if rec.Code != http.StatusConflict {
		t.Fatalf("stale read: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(epochHeader); got != "2" {
		t.Fatalf("stale read %s header = %q", epochHeader, got)
	}

	rec = get("/v1/shard/snapshot?epoch=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("conditional read of live epoch: status %d", rec.Code)
	}
	if snap = decodeBody[ShardSnapshotResponse](t, rec); snap.Active != 1 {
		t.Fatalf("snapshot after join: %+v", snap)
	}

	if rec = get("/v1/shard/snapshot?epoch=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed epoch: status %d", rec.Code)
	}
	rec = postJSON(t, s, "/v1/shard/snapshot", struct{}{})
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST snapshot: status %d", rec.Code)
	}
}

// TestShardEndpointsAbsentWithoutPlane pins that the shard routes only
// exist when a plane is configured.
func TestShardEndpointsAbsentWithoutPlane(t *testing.T) {
	s := testServer()
	for _, path := range []string{"/v1/shard/assign", "/v1/shard/snapshot"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s without a plane: status %d, want 404", path, rec.Code)
		}
	}
}

func TestShardEndpointNormalization(t *testing.T) {
	for _, path := range []string{"/v1/shard/assign", "/v1/shard/snapshot"} {
		if got := normalizeEndpoint(path); got != path {
			t.Errorf("normalizeEndpoint(%q) = %q", path, got)
		}
	}
	if got := normalizeEndpoint("/v1/shard/bogus"); got != "other" {
		t.Errorf("unknown shard path normalized to %q", got)
	}
}
