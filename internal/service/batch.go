package service

// The serving endpoints: POST /v1/assign-one and POST /v1/assign-batch
// answer "which server should this prospective client attach to"
// straight from the shard plane's published snapshot. Unlike
// /v1/shard/assign these never mutate the plane and never take its
// mutex — the whole request rides one lock-free snapshot read
// (shard.Plane.View), so the serving tier scales with reader cores no
// matter how busy the control plane is. The batch endpoint amortizes
// the snapshot resolution, the admission decision, and one perfkit
// evaluation across every client in the request.
//
// Atomicity: exactly one admission decision is taken per request,
// before any parsing or computation, and the response is fully encoded
// into a pooled buffer before the first byte is written. A shed state
// entered while a batch is being resolved therefore cannot split it —
// every response is either a complete assignment for all requested
// clients or a whole-request 429 with Retry-After, never a partial
// batch. Stale-epoch conditional reads are rejected with 409 and the
// live epoch in the X-Diacap-Epoch header, mirroring
// /v1/shard/snapshot; successful responses carry the epoch in the body
// instead (a header write would allocate on the steady path).

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"diacap/internal/obs"
	"diacap/internal/shard"
)

// AssignOneRequest documents the /v1/assign-one request shape. The
// handler does not decode into this struct — the serving path uses the
// pooled codec in batchcodec.go — but clients and tests marshal from
// it, and the fuzz and differential tests keep the two in lockstep.
type AssignOneRequest struct {
	// Coord is the prospective client's network coordinate as a
	// [x, y], [x, y, z], or [x, y, z, h] number array.
	Coord []float64 `json:"coord"`
	// Epoch, if set, pins the resolution to that exact published epoch;
	// a retired epoch is rejected with 409. Omitted means the current
	// snapshot.
	Epoch *uint64 `json:"epoch,omitempty"`
}

// AssignBatchRequest documents the /v1/assign-batch request shape (see
// AssignOneRequest).
type AssignBatchRequest struct {
	// Coords are the prospective clients' network coordinates.
	Coords [][]float64 `json:"coords"`
	Epoch  *uint64     `json:"epoch,omitempty"`
}

// AssignOneResponse is the unary serving result.
type AssignOneResponse struct {
	// Epoch is the snapshot the resolution was answered under.
	Epoch uint64 `json:"epoch"`
	// D and CertifiedD describe the published assignment's quality at
	// that epoch (the interactivity the joining client would share).
	D          float64 `json:"d"`
	CertifiedD float64 `json:"certifiedD"`
	// Server is the nearest admissible server's index, or -1 when every
	// server is dead or at capacity.
	Server int `json:"server"`
	// LatencyMs is the coordinate-predicted one-way latency to Server,
	// or -1 when Server is -1.
	LatencyMs float64 `json:"latencyMs"`
}

// AssignBatchResponse is the batch serving result; Servers[i] and
// LatencyMs[i] answer Coords[i].
type AssignBatchResponse struct {
	Epoch      uint64    `json:"epoch"`
	D          float64   `json:"d"`
	CertifiedD float64   `json:"certifiedD"`
	Servers    []int     `json:"servers"`
	LatencyMs  []float64 `json:"latencyMs"`
}

func (s *Server) handleAssignOne(w http.ResponseWriter, r *http.Request) {
	s.serveResolve(w, r, "/v1/assign-one", true)
}

func (s *Server) handleAssignBatch(w http.ResponseWriter, r *http.Request) {
	s.serveResolve(w, r, "/v1/assign-batch", false)
}

// serveResolve is the shared serving handler. The cold paths (method
// rejection, admission shed, error rendering) live here; the warm path
// is resolveRequest, which is annotated and allocation-free at steady
// state.
func (s *Server) serveResolve(w http.ResponseWriter, r *http.Request, endpoint string, unary bool) {
	if r.Method != http.MethodPost {
		s.fail(w, r, &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"})
		return
	}
	// The request's single admission decision: after this point the
	// batch is computed and written in full (see the package comment on
	// atomicity). Degraded mode never has a cached response for these
	// endpoints — results depend on the request's coordinates — so it
	// always falls through to a fresh resolve.
	if s.admit(w, r, endpoint) {
		return
	}
	sc := getServeScratch()
	defer putServeScratch(sc)
	start := time.Now()
	_, rsp := obs.Child(r.Context(), "service.resolve")
	err := s.resolveRequest(w, r, sc, unary)
	if rsp != nil {
		// Guarded so the untraced steady state never builds the variadic
		// attr slice (it heap-escapes alongside the pooled scratch).
		rsp.SetAttr(obs.Int("clients", len(sc.coords)))
	}
	rsp.End()
	if err == nil {
		s.recordResolve(unary, len(sc.coords), time.Since(start))
		return
	}
	var stale *shard.ErrStaleEpoch
	if errors.As(err, &stale) {
		w.Header().Set(epochHeader, strconv.FormatUint(stale.Current, 10))
		s.fail(w, r, &httpError{status: http.StatusConflict, msg: err.Error()})
		return
	}
	s.fail(w, r, err, "clients", len(sc.coords))
}

// resolveRequest is the steady-state serving path: read the body, parse
// it, pin a snapshot view, resolve every coordinate, encode, write.
// After warm-up (pooled buffers at capacity) it performs zero heap
// allocations; alloc_test.go pins that with AllocsPerRun.
//
//dialint:hotpath
func (s *Server) resolveRequest(w http.ResponseWriter, r *http.Request, sc *serveScratch, unary bool) error {
	if err := readServeBody(r, sc, s.opts.MaxBodyBytes); err != nil {
		return err
	}
	epoch, hasEpoch, err := parseResolveRequest(sc, s.opts.MaxBatchClients, unary)
	if err != nil {
		return err
	}
	var view shard.ResolveView
	if hasEpoch {
		if view, err = s.opts.Shard.ViewAt(epoch); err != nil {
			return err
		}
	} else {
		view = s.opts.Shard.View()
	}
	n := len(sc.coords)
	sc.out = growInts(sc.out, n)
	sc.lat = growFloats(sc.lat, n)
	view.ResolveInto(sc.coords, &sc.cs, sc.out, sc.lat)
	snap := view.Snap
	sc.resp = encodeResolveResponse(sc.resp[:0], snap.Epoch, snap.D, snap.CertifiedD, sc.out, sc.lat, unary)
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = ctJSON
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.resp)
	return nil
}

// recordResolve publishes the per-endpoint resolved-client counter
// (pre-resolved at New time so the serving path never performs a
// labeled metric lookup).
func (s *Server) recordResolve(unary bool, clients int, _ time.Duration) {
	var c *obs.Counter
	if unary {
		c = s.mResolveOne
	} else {
		c = s.mResolveBatch
	}
	if c != nil {
		c.Add(uint64(clients))
	}
}
