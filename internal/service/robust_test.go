package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecoverMiddlewareTurnsPanicInto500JSON(t *testing.T) {
	h := recoverJSON(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assign", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response is not JSON: %q", rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("panic response has no error field: %v", body)
	}
	if strings.Contains(body["error"], "boom") {
		t.Fatalf("panic value leaked to the client: %v", body)
	}
}

func TestRecoverMiddlewarePropagatesAbortHandler(t *testing.T) {
	// http.ErrAbortHandler is the stdlib's sanctioned way to abort a
	// response; swallowing it would change its meaning.
	h := recoverJSON(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler must propagate")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("unreachable")
}

func TestRequestTimeoutAnswers503JSON(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	})
	h := timeoutJSON(slow, 20*time.Millisecond)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assign", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("timeout response is not JSON: %q", rec.Body.String())
	}
	if body["error"] == "" {
		t.Fatalf("timeout response has no error field: %v", body)
	}
}

func TestRequestTimeoutFastPathUnaffected(t *testing.T) {
	s := New(Options{MaxNodes: 256, RequestTimeout: 2 * time.Second})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz under timeout middleware: %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["status"] != "ok" {
		t.Fatalf("healthz body %q", rec.Body.String())
	}
}

func TestServerPanicRouteRecovered(t *testing.T) {
	// End to end through New: a handler that panics yields 500 JSON, and
	// the server keeps answering afterwards.
	s := New(Options{MaxNodes: 256})
	s.mux.HandleFunc("/panic", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/panic", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("server unhealthy after recovered panic: %d", rec.Code)
	}
}
