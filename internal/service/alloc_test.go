package service

import (
	"io"
	"net/http"
	"testing"

	"diacap/internal/testkit"
)

// replayBody is a resettable request body, so the same http.Request can
// serve many handler invocations without per-run reader allocations.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }

// sinkWriter is the minimal ResponseWriter: one reused header map, body
// bytes discarded. It stands in for net/http's writer so the test
// measures the handler's own allocations, not the transport's.
type sinkWriter struct {
	h http.Header
	n int
}

func (w *sinkWriter) Header() http.Header { return w.h }
func (w *sinkWriter) WriteHeader(int)     {}
func (w *sinkWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// serveAllocs measures steady-state allocations of one serving handler:
// a warm-up request fills the pooled scratch to the request's working
// size, then AllocsPerRun drives the identical request through the full
// handler (admission gate, body read, parse, snapshot view, resolve,
// encode, write).
func serveAllocs(t *testing.T, path, body string, handler http.HandlerFunc) float64 {
	t.Helper()
	rb := &replayBody{data: []byte(body)}
	req, err := http.NewRequest(http.MethodPost, path, rb)
	if err != nil {
		t.Fatal(err)
	}
	w := &sinkWriter{h: make(http.Header)}
	run := func() {
		rb.off = 0
		w.n = 0
		handler(w, req)
	}
	run() // warm-up: grows pooled buffers and installs Content-Type
	if w.n == 0 {
		t.Fatalf("%s: warm-up wrote no body", path)
	}
	return testing.AllocsPerRun(500, run)
}

// The steady-state serving path — unary and batch — must not allocate:
// the pooled serveScratch owns every buffer, the snapshot view is one
// atomic load, and the codec parses and encodes in place. This is the
// runtime pin behind the //dialint:hotpath annotations in batchcodec.go
// and batch.go.
func TestServePathZeroAlloc(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("allocation counts include race-detector bookkeeping")
	}
	s, _ := resolveServer(t, 2, Options{})

	if avg := serveAllocs(t, "/v1/assign-one",
		`{"coord":[25,35,1,0.5]}`, s.handleAssignOne); avg != 0 {
		t.Errorf("unary serve path allocates %.2f times per run, want 0", avg)
	}

	// A mid-sized batch: large enough that the scratch matrix and result
	// slices are real, small enough to keep the test fast.
	var body []byte
	body = append(body, `{"coords":[`...)
	for i := 0; i < 256; i++ {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, `[12.5,37.25,1,0.5]`...)
	}
	body = append(body, `]}`...)
	if avg := serveAllocs(t, "/v1/assign-batch", string(body), s.handleAssignBatch); avg != 0 {
		t.Errorf("batch serve path allocates %.2f times per run, want 0", avg)
	}
}
