package service

// Pooled request/response buffers and the hand-rolled JSON codec behind
// the serving endpoints (/v1/assign-one, /v1/assign-batch). The serving
// path extends perfkit's zero-alloc discipline to HTTP: encoding/json
// allocates per decode (tokenizer state, boxed values, result slices),
// which at thousands of requests per second turns into GC pressure that
// shows up directly in the tail latencies the load harness measures. So
// the steady state reuses everything — body buffer, parsed coordinates,
// the latency scratch matrix, result slices, and the response buffer
// all live in one pooled serveScratch, and the codec parses in place
// from (and encodes in place into) those buffers.
//
// The grammar is deliberately tiny. Batch requests are
//
//	{"coords": [[x,y], [x,y,z], [x,y,z,h], ...], "epoch": N}
//
// and unary requests replace "coords" with a single "coord" array.
// Numbers are scanned with a strict numeric charset before
// strconv.ParseFloat sees them, so non-JSON spellings like NaN or Inf
// are syntax errors (400), exactly as encoding/json would treat them.
// Semantic violations — wrong coordinate arity, non-finite values from
// range overflow, negative heights — map to 422, and batches beyond
// Options.MaxBatchClients to 413. The AllocsPerRun tests in
// alloc_test.go pin the steady-state contract at runtime; the
// //dialint:hotpath annotations here make hotpath-alloc explain it at
// review time.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"unsafe"

	"diacap/internal/latency"
	"diacap/internal/perfkit"
)

// serveScratch is the pooled per-request working set of the serving
// endpoints. Every field keeps its backing storage across requests
// (capacities settle at the deployment's typical batch size), so a
// warmed scratch serves a request without a single heap allocation.
type serveScratch struct {
	// body holds the raw request body.
	body []byte
	// coords are the parsed query coordinates.
	coords []latency.Coord
	// cs is the client×server latency scratch the resolve fill writes.
	cs perfkit.FlatMatrix
	// out and lat receive the resolved server indices and latencies.
	out []int
	lat []float64
	// resp is the encoded response body.
	resp []byte
}

var servePool = sync.Pool{New: func() any { return new(serveScratch) }}

// getServeScratch takes a scratch from the pool (boxing a pointer into
// the pool's interface does not allocate).
//
//dialint:hotpath
func getServeScratch() *serveScratch { return servePool.Get().(*serveScratch) }

// putServeScratch returns a scratch, retaining all capacity.
//
//dialint:hotpath
func putServeScratch(sc *serveScratch) {
	//lint:ignore dialint/hotpath-alloc boxing a pointer fills the interface word without heap allocation
	servePool.Put(sc)
}

// unsafeString views b as a string without copying — safe here because
// every use hands the string to strconv.Parse*, which does not retain
// it past the call.
func unsafeString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Codec error constructors. They live outside the annotated functions'
// bodies (fmt formatting allocates) and take concrete parameters so the
// hot callers never box arguments: errors are the cold path, but the
// calls to build them sit inside //dialint:hotpath functions.

func errBodyTooLarge(limit int64) *httpError {
	return &httpError{status: http.StatusRequestEntityTooLarge,
		msg: fmt.Sprintf("request body exceeds %d bytes", limit)}
}

func errBatchTooLarge(max int) *httpError {
	return &httpError{status: http.StatusRequestEntityTooLarge,
		msg: fmt.Sprintf("batch exceeds %d clients", max)}
}

func errBodyRead(err error) *httpError {
	return badRequest("reading body: %v", err)
}

func errExpected(c byte, off int) *httpError {
	return badRequest("invalid JSON: expected %q at offset %d", c, off)
}

func errExpectedNumber(off int) *httpError {
	return badRequest("invalid JSON: expected a number at offset %d", off)
}

func errBadNumber(off int) *httpError {
	return unprocessable("number at offset %d out of float64 range", off)
}

func errUnterminated(off int) *httpError {
	return badRequest("invalid JSON: unterminated string at offset %d", off)
}

func errUnknownKey(key string) *httpError {
	return badRequest("unknown key %q", key)
}

func errDuplicateKey(key string) *httpError {
	return badRequest("duplicate key %q", key)
}

func errTrailing(off int) *httpError {
	return badRequest("invalid JSON: trailing data at offset %d", off)
}

func errCoordArity(idx, n int) *httpError {
	return unprocessable("coordinate %d has %d components, want 2 to 4 ([x, y], [x, y, z], or [x, y, z, h])", idx, n)
}

func errCoordInvalid(idx int, err error) *httpError {
	return unprocessable("coordinate %d: %v", idx, err)
}

func errNoCoords(unary bool) *httpError {
	if unary {
		return badRequest("coord is required")
	}
	return badRequest("coords are required")
}

// readServeBody reads the request body into sc.body, rejecting bodies
// over limit with 413. It replaces http.MaxBytesReader on this path:
// the wrapper allocates per request, a pooled buffer plus a length
// check does not.
//
//dialint:hotpath
func readServeBody(r *http.Request, sc *serveScratch, limit int64) error {
	b := sc.body[:0]
	for {
		if len(b) == cap(b) {
			//lint:ignore dialint/hotpath-alloc growth is amortized: the pooled buffer retains its capacity across requests
			b = append(b, 0)
			b = b[:len(b)-1]
		}
		n, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		sc.body = b
		if int64(len(b)) > limit {
			return errBodyTooLarge(limit)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return errBodyRead(err)
		}
	}
}

// batchParser is a cursor over one request body.
type batchParser struct {
	b   []byte
	pos int
}

// peek returns the next non-whitespace byte without consuming it, or 0
// at end of input.
//
//dialint:hotpath
func (p *batchParser) peek() byte {
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return p.b[p.pos]
		}
	}
	return 0
}

//dialint:hotpath
func (p *batchParser) expect(c byte) error {
	if p.peek() != c {
		return errExpected(c, p.pos)
	}
	p.pos++
	return nil
}

// parseKey consumes a double-quoted object key. Keys are plain
// identifiers in this grammar, so escapes are not interpreted — an
// escaped or exotic key simply fails the known-key comparison.
//
//dialint:hotpath
func (p *batchParser) parseKey() (string, error) {
	if err := p.expect('"'); err != nil {
		return "", err
	}
	start := p.pos
	for p.pos < len(p.b) && p.b[p.pos] != '"' {
		p.pos++
	}
	if p.pos >= len(p.b) {
		return "", errUnterminated(start)
	}
	key := unsafeString(p.b[start:p.pos])
	p.pos++
	return key, nil
}

// isNumByte reports whether c can appear in a JSON number token.
func isNumByte(c byte) bool {
	return c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
}

// validJSONNumber reports whether tok matches the JSON number grammar
// exactly. strconv.ParseFloat is more lenient — it also accepts "+1",
// ".5", "1.", hex floats, and digit-separating underscores — and the
// fuzz differential against encoding/json holds this codec to the
// strict grammar.
//
//dialint:hotpath
func validJSONNumber(tok []byte) bool {
	i := 0
	if i < len(tok) && tok[i] == '-' {
		i++
	}
	if i >= len(tok) {
		return false
	}
	switch {
	case tok[i] == '0':
		i++
	case tok[i] >= '1' && tok[i] <= '9':
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	if i < len(tok) && (tok[i] == 'e' || tok[i] == 'E') {
		i++
		if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
			i++
		}
		if i >= len(tok) || tok[i] < '0' || tok[i] > '9' {
			return false
		}
		for i < len(tok) && tok[i] >= '0' && tok[i] <= '9' {
			i++
		}
	}
	return i == len(tok)
}

// parseFloat consumes one number token. The charset gate rejects NaN /
// Inf spellings as syntax (400); tokens that scan but overflow float64
// are a semantic error (422).
//
//dialint:hotpath
func (p *batchParser) parseFloat() (float64, error) {
	p.peek()
	start := p.pos
	for p.pos < len(p.b) && isNumByte(p.b[p.pos]) {
		p.pos++
	}
	tok := p.b[start:p.pos]
	if !validJSONNumber(tok) {
		return 0, errExpectedNumber(start)
	}
	v, err := strconv.ParseFloat(unsafeString(tok), 64)
	if err != nil {
		if ne, ok := err.(*strconv.NumError); ok && ne.Err == strconv.ErrRange {
			return 0, errBadNumber(start)
		}
		return 0, errExpectedNumber(start)
	}
	return v, nil
}

// parseEpoch consumes an unsigned integer token (negative or fractional
// epochs are syntax errors).
//
//dialint:hotpath
func (p *batchParser) parseEpoch() (uint64, error) {
	p.peek()
	start := p.pos
	for p.pos < len(p.b) && p.b[p.pos] >= '0' && p.b[p.pos] <= '9' {
		p.pos++
	}
	tok := p.b[start:p.pos]
	if len(tok) == 0 || (len(tok) > 1 && tok[0] == '0') {
		return 0, errExpectedNumber(start)
	}
	v, err := strconv.ParseUint(unsafeString(tok), 10, 64)
	if err != nil {
		return 0, errBadNumber(start)
	}
	return v, nil
}

// parseCoordValue consumes one [x, y(, z(, h))] array into a Coord,
// enforcing arity and latency.Coord.Valid (finite components,
// non-negative height).
//
//dialint:hotpath
func (p *batchParser) parseCoordValue(idx int) (latency.Coord, error) {
	var c latency.Coord
	if err := p.expect('['); err != nil {
		return c, err
	}
	var vals [4]float64
	n := 0
	for {
		if n == len(vals) {
			return c, errCoordArity(idx, n+1)
		}
		v, err := p.parseFloat()
		if err != nil {
			return c, err
		}
		vals[n] = v
		n++
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			if n < 2 {
				return c, errCoordArity(idx, n)
			}
			c = latency.Coord{X: vals[0], Y: vals[1], Z: vals[2], H: vals[3]}
			if err := c.Valid(); err != nil {
				return c, errCoordInvalid(idx, err)
			}
			return c, nil
		default:
			return c, errExpected(']', p.pos)
		}
	}
}

// parseCoords consumes the batch "coords" array into sc.coords,
// rejecting batches beyond max with 413 as soon as the count crosses it
// (no point scanning the rest of an oversized body).
//
//dialint:hotpath
func (p *batchParser) parseCoords(sc *serveScratch, max int) error {
	if err := p.expect('['); err != nil {
		return err
	}
	if p.peek() == ']' {
		p.pos++
		return nil
	}
	for {
		if len(sc.coords) >= max {
			return errBatchTooLarge(max)
		}
		c, err := p.parseCoordValue(len(sc.coords))
		if err != nil {
			return err
		}
		//lint:ignore dialint/hotpath-alloc growth is amortized: the pooled scratch retains its backing array across requests
		sc.coords = append(sc.coords, c)
		switch p.peek() {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return nil
		default:
			return errExpected(']', p.pos)
		}
	}
}

// parseResolveRequest parses sc.body into sc.coords (reused) and the
// optional pinned epoch. unary selects the single-"coord" grammar.
//
//dialint:hotpath
func parseResolveRequest(sc *serveScratch, maxBatch int, unary bool) (epoch uint64, hasEpoch bool, err error) {
	sc.coords = sc.coords[:0]
	p := batchParser{b: sc.body}
	if err = p.expect('{'); err != nil {
		return 0, false, err
	}
	if p.peek() == '}' {
		p.pos++
	} else {
		for {
			key, kerr := p.parseKey()
			if kerr != nil {
				return 0, false, kerr
			}
			if err = p.expect(':'); err != nil {
				return 0, false, err
			}
			switch {
			case !unary && key == "coords":
				if len(sc.coords) > 0 {
					return 0, false, errDuplicateKey(key)
				}
				if err = p.parseCoords(sc, maxBatch); err != nil {
					return 0, false, err
				}
			case unary && key == "coord":
				if len(sc.coords) > 0 {
					return 0, false, errDuplicateKey(key)
				}
				c, cerr := p.parseCoordValue(0)
				if cerr != nil {
					return 0, false, cerr
				}
				//lint:ignore dialint/hotpath-alloc growth is amortized: the pooled scratch retains its backing array across requests
				sc.coords = append(sc.coords, c)
			case key == "epoch":
				if hasEpoch {
					return 0, false, errDuplicateKey(key)
				}
				if epoch, err = p.parseEpoch(); err != nil {
					return 0, false, err
				}
				hasEpoch = true
			default:
				return 0, false, errUnknownKey(key)
			}
			if ch := p.peek(); ch == ',' {
				p.pos++
				continue
			} else if ch == '}' {
				p.pos++
				break
			}
			return 0, false, errExpected('}', p.pos)
		}
	}
	// peek-then-length, not peek != 0: a literal NUL byte is trailing
	// data, not end of input.
	if p.peek(); p.pos < len(p.b) {
		return 0, false, errTrailing(p.pos)
	}
	if len(sc.coords) == 0 {
		return 0, false, errNoCoords(unary)
	}
	return epoch, hasEpoch, nil
}

// growInts returns s with length n, reusing capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats returns s with length n, reusing capacity when possible.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ctJSON is the shared Content-Type header value the serving path
// installs by direct map assignment — w.Header().Set builds a fresh
// one-element slice per call, this shared value does not. Never mutated.
var ctJSON = []string{"application/json"}

// appendLit appends a literal JSON fragment. Split out of the annotated
// encoder so the one amortized-growth append site is documented here
// instead of flagged at every call.
func appendLit(dst []byte, s string) []byte { return append(dst, s...) }

// appendFloatJSON renders v in the shortest round-trippable form.
// Serving-path values are always finite or the sentinel -1 (the resolve
// layer replaces +Inf before encoding), so the output is valid JSON.
func appendFloatJSON(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// encodeResolveResponse renders the response body into dst (reused).
// Both endpoints share this encoder, so a batch response is
// byte-identical to the concatenation of its unary twins' fields —
// the property the differential test pins.
//
//dialint:hotpath
func encodeResolveResponse(dst []byte, epoch uint64, d, certifiedD float64, out []int, lat []float64, unary bool) []byte {
	dst = appendLit(dst, `{"epoch":`)
	dst = strconv.AppendUint(dst, epoch, 10)
	dst = appendLit(dst, `,"d":`)
	dst = appendFloatJSON(dst, d)
	dst = appendLit(dst, `,"certifiedD":`)
	dst = appendFloatJSON(dst, certifiedD)
	if unary {
		dst = appendLit(dst, `,"server":`)
		dst = strconv.AppendInt(dst, int64(out[0]), 10)
		dst = appendLit(dst, `,"latencyMs":`)
		dst = appendFloatJSON(dst, lat[0])
	} else {
		dst = appendLit(dst, `,"servers":[`)
		for i, k := range out {
			if i > 0 {
				dst = appendLit(dst, ",")
			}
			dst = strconv.AppendInt(dst, int64(k), 10)
		}
		dst = appendLit(dst, `],"latencyMs":[`)
		for i, v := range lat {
			if i > 0 {
				dst = appendLit(dst, ",")
			}
			dst = appendFloatJSON(dst, v)
		}
		dst = appendLit(dst, "]")
	}
	return appendLit(dst, "}\n")
}
