package service

import (
	"errors"
	"net/http"
	"strconv"

	"diacap/internal/core"
	"diacap/internal/obs"
	"diacap/internal/shard"
)

// epochHeader carries the currently published shard epoch on every
// shard-endpoint response, so clients learn where the world is even
// (especially) when their conditional read is rejected — the same
// convention as the admission layer's Retry-After on 429.
const epochHeader = "X-Diacap-Epoch"

// ShardAssignRequest is one control-plane mutation routed to the
// sharded plane.
type ShardAssignRequest struct {
	// Op is "join", "leave", or "migrate".
	Op string `json:"op"`
	// Client is the global client index.
	Client int `json:"client"`
	// Server is the migration target; omitted or -1 lets the owning
	// shard's strategy choose. Ignored for join and leave.
	Server *int `json:"server,omitempty"`
}

// ShardAssignResponse reports the applied mutation and the newly
// published world state.
type ShardAssignResponse struct {
	Epoch uint64 `json:"epoch"`
	Shard int    `json:"shard"`
	// Server is the client's server after a join or migrate, and the
	// vacated server after a leave.
	Server     int     `json:"server"`
	D          float64 `json:"d"`
	CertifiedD float64 `json:"certifiedD"`
}

// ShardSnapshotResponse is the published world state at one epoch.
type ShardSnapshotResponse struct {
	Epoch      uint64    `json:"epoch"`
	Active     int       `json:"active"`
	D          float64   `json:"d"`
	CertifiedD float64   `json:"certifiedD"`
	MaxRho     float64   `json:"maxRho"`
	Assignment []int     `json:"assignment"`
	Loads      []int     `json:"loads"`
	Alive      []bool    `json:"alive"`
	ShardLoad  []int     `json:"shardLoad"`
	ShardD     []float64 `json:"shardD"`
}

// shardOpError maps plane rejections onto the service's status
// conventions: unknown input 400, state conflicts 409, capacity 422.
func shardOpError(err error) error {
	switch {
	case errors.Is(err, shard.ErrUnknownClient):
		return badRequest("%v", err)
	case errors.Is(err, core.ErrAlreadyAssigned),
		errors.Is(err, core.ErrNotAssigned),
		errors.Is(err, shard.ErrServerDown):
		return &httpError{status: http.StatusConflict, msg: err.Error()}
	case errors.Is(err, shard.ErrNoCapacity):
		return unprocessable("%v", err)
	}
	return err
}

func (s *Server) handleShardAssign(w http.ResponseWriter, r *http.Request) {
	p := s.opts.Shard
	var req ShardAssignRequest
	_, dsp := obs.Child(r.Context(), "service.decode")
	err := s.decode(w, r, &req)
	dsp.End()
	if err != nil {
		s.fail(w, r, err)
		return
	}
	var res shard.OpResult
	switch req.Op {
	case "join":
		res, err = p.Join(r.Context(), req.Client)
	case "leave":
		res, err = p.Leave(r.Context(), req.Client)
	case "migrate":
		target := -1
		if req.Server != nil {
			target = *req.Server
		}
		res, err = p.Migrate(r.Context(), req.Client, target)
	default:
		s.fail(w, r, badRequest("unknown op %q (want join, leave, or migrate)", req.Op))
		return
	}
	if err != nil {
		w.Header().Set(epochHeader, strconv.FormatUint(p.Epoch(), 10))
		s.fail(w, r, shardOpError(err), "op", req.Op, "client", req.Client)
		return
	}
	w.Header().Set(epochHeader, strconv.FormatUint(res.Epoch, 10))
	writeJSON(w, http.StatusOK, ShardAssignResponse{
		Epoch:      res.Epoch,
		Shard:      res.Shard,
		Server:     res.Server,
		D:          res.D,
		CertifiedD: res.CertifiedD,
	})
}

func (s *Server) handleShardSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, &httpError{status: http.StatusMethodNotAllowed, msg: "GET required"})
		return
	}
	p := s.opts.Shard
	snap := p.Current()
	if q := r.URL.Query().Get("epoch"); q != "" {
		epoch, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			s.fail(w, r, badRequest("invalid epoch %q: %v", q, err))
			return
		}
		snap, err = p.At(epoch)
		var stale *shard.ErrStaleEpoch
		if errors.As(err, &stale) {
			// The reader's epoch was retired: 409 with the live epoch
			// in the header so it can re-fetch unconditionally.
			w.Header().Set(epochHeader, strconv.FormatUint(stale.Current, 10))
			s.fail(w, r, &httpError{status: http.StatusConflict, msg: err.Error()})
			return
		}
		if err != nil {
			s.fail(w, r, err)
			return
		}
	}
	w.Header().Set(epochHeader, strconv.FormatUint(snap.Epoch, 10))
	resp := ShardSnapshotResponse{
		Epoch:      snap.Epoch,
		Active:     snap.Active,
		D:          snap.D,
		CertifiedD: snap.CertifiedD,
		MaxRho:     snap.MaxRho,
		Assignment: snap.Assignment,
		Loads:      snap.Loads,
		Alive:      snap.Alive,
		ShardLoad:  make([]int, len(snap.Shards)),
		ShardD:     make([]float64, len(snap.Shards)),
	}
	for i, sum := range snap.Shards {
		resp.ShardLoad[i] = sum.Active
		resp.ShardD[i] = sum.D
	}
	writeJSON(w, http.StatusOK, resp)
}
