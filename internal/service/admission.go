package service

// Admission control for the assignment endpoints. When the service
// fronts a live cluster, a churn event (failure storm, reconnect
// stampede, partition) makes fresh assignments both expensive and
// short-lived: the optimal move is often to answer brokers with the
// last known-good assignment — or to push back outright — until the
// cluster stabilizes. The controller scores cluster health from the
// always-on resilience telemetry (live.HealthSnapshot) and walks a
// three-state machine:
//
//	accept   → compute fresh assignments as usual
//	degraded → serve the cached last-good response with an
//	           X-Diacap-Stale header (compute on cache miss)
//	shed     → 429 + Retry-After, no computation at all
//
// State exits require the score to drop an ExitMargin below the entry
// threshold, so a score oscillating around a threshold cannot flap the
// service between modes — the same hysteresis idea the dynamic layer
// applies to reassignment.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"diacap/internal/live"
	"diacap/internal/obs"
)

// HealthSource yields live-cluster resilience telemetry; *live.Cluster
// satisfies it.
type HealthSource interface {
	HealthSnapshot() live.HealthSnapshot
}

// AdmissionState is the controller's current mode.
type AdmissionState int

const (
	AdmissionAccept AdmissionState = iota
	AdmissionDegraded
	AdmissionShed
)

func (s AdmissionState) String() string {
	switch s {
	case AdmissionAccept:
		return "accept"
	case AdmissionDegraded:
		return "degraded"
	case AdmissionShed:
		return "shed"
	}
	return fmt.Sprintf("AdmissionState(%d)", int(s))
}

// AdmissionConfig tunes the controller. Zero values take the defaults.
type AdmissionConfig struct {
	// Health provides the cluster telemetry; required.
	Health HealthSource
	// Window is the minimum wall-clock spacing between telemetry
	// refreshes; successive snapshots are diffed into rates over it
	// (default 1 s).
	Window time.Duration
	// DegradedScore and ShedScore are the state entry thresholds on the
	// health score in [0, 1] (defaults 0.25 and 0.6).
	DegradedScore float64
	ShedScore     float64
	// ExitMargin is the hysteresis band: leaving a state requires the
	// score to drop ExitMargin below its entry threshold (default 0.05).
	ExitMargin float64
	// RetryAfter is the backoff advertised on 429 responses (default 2 s).
	RetryAfter time.Duration
	// StaleTTL bounds the age of a cached response served in degraded
	// mode; older entries force a fresh computation (default 5 min).
	StaleTTL time.Duration
}

func (c *AdmissionConfig) fill() {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.DegradedScore <= 0 {
		c.DegradedScore = 0.25
	}
	if c.ShedScore <= 0 {
		c.ShedScore = 0.6
	}
	if c.ExitMargin <= 0 {
		c.ExitMargin = 0.05
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.StaleTTL <= 0 {
		c.StaleTTL = 5 * time.Minute
	}
}

// healthScore maps a telemetry delta onto [0, 1]. Components and their
// saturation scales, weights summing to 1:
//
//	0.45  dead-server fraction (instantaneous)
//	0.20  failovers per second, saturating at 0.5/s
//	0.20  reconnect dials per client per second, saturating at 1
//	0.15  mean lag spread per delivery, saturating at 50 virtual ms
//
// The dead fraction alone cannot shed at the default 0.6 threshold: a
// stably degraded cluster that still meets its δ keeps serving, and
// only active churn (failovers, reconnect storms, lag blowout) pushes
// the service into load shedding.
func healthScore(prev, cur live.HealthSnapshot, elapsedSec float64) float64 {
	parts := healthParts(prev, cur, elapsedSec)
	return saturate(parts[0] + parts[1] + parts[2] + parts[3])
}

// healthParts returns the four weighted score contributions, indexed in
// the order of the healthComponents label set (dead_servers,
// failover_rate, reconnect_rate, lag_spread). healthScore sums them in
// that order, so the refactor is arithmetically identical to the
// previous single-pass accumulation.
func healthParts(prev, cur live.HealthSnapshot, elapsedSec float64) [4]float64 {
	if elapsedSec <= 0 {
		elapsedSec = 1
	}
	var parts [4]float64
	if cur.Servers > 0 {
		parts[0] = 0.45 * float64(cur.DeadServers) / float64(cur.Servers)
	}
	failRate := float64(cur.Failovers-prev.Failovers) / elapsedSec
	parts[1] = 0.20 * saturate(failRate/0.5)
	if cur.Clients > 0 {
		reconRate := float64(cur.ReconnectAttempts-prev.ReconnectAttempts) / elapsedSec / float64(cur.Clients)
		parts[2] = 0.20 * saturate(reconRate)
	}
	if dd := cur.Deliveries - prev.Deliveries; dd > 0 {
		meanSpread := (cur.LagSpreadSum - prev.LagSpreadSum) / float64(dd)
		parts[3] = 0.15 * saturate(meanSpread/50)
	}
	return parts
}

// dominantComponent names the largest score contribution (first wins on
// exact ties, matching the healthComponents order), or "none" when the
// score is zero — the answer to "why is the service shedding".
func dominantComponent(parts [4]float64) string {
	best, bestV := 4, 0.0
	for i, v := range parts {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return healthComponents[best]
}

func saturate(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// nextState advances the admission state machine for one score reading.
// Entry uses the configured thresholds; exit requires dropping
// ExitMargin below them.
func (c *AdmissionConfig) nextState(state AdmissionState, score float64) AdmissionState {
	switch state {
	case AdmissionShed:
		if score >= c.ShedScore-c.ExitMargin {
			return AdmissionShed
		}
		if score >= c.DegradedScore {
			return AdmissionDegraded
		}
		return AdmissionAccept
	case AdmissionDegraded:
		if score >= c.ShedScore {
			return AdmissionShed
		}
		if score >= c.DegradedScore-c.ExitMargin {
			return AdmissionDegraded
		}
		return AdmissionAccept
	default:
		if score >= c.ShedScore {
			return AdmissionShed
		}
		if score >= c.DegradedScore {
			return AdmissionDegraded
		}
		return AdmissionAccept
	}
}

// admission is the runtime controller instance.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time // wall clock; tests substitute a fake

	mu       sync.Mutex
	haveBase bool
	base     live.HealthSnapshot // snapshot the current rates diff against
	baseAt   time.Time
	score    float64
	state    AdmissionState
	// dominant names the health component contributing most to the
	// latest score (see dominantComponent).
	dominant string
	stale    map[string]staleEntry // endpoint → last-good response
}

type staleEntry struct {
	body   []byte
	stored time.Time
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg.fill()
	return &admission{cfg: cfg, now: time.Now, dominant: "none", stale: make(map[string]staleEntry)}
}

// refresh re-scores the cluster at most once per Window and returns the
// current state, score, the state before this reading (prev != state
// marks a transition, attributable to the calling request), and the
// dominant score component.
func (a *admission) refresh() (state AdmissionState, score float64, prev AdmissionState, dominant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	if a.haveBase && now.Sub(a.baseAt) < a.cfg.Window {
		return a.state, a.score, a.state, a.dominant
	}
	snap := a.cfg.Health.HealthSnapshot()
	var parts [4]float64
	if !a.haveBase {
		// First reading: no rate base yet, only the instantaneous
		// components count.
		a.haveBase = true
		parts = healthParts(snap, snap, 1)
	} else {
		parts = healthParts(a.base, snap, now.Sub(a.baseAt).Seconds())
	}
	a.score = saturate(parts[0] + parts[1] + parts[2] + parts[3])
	a.dominant = dominantComponent(parts)
	prev = a.state
	a.state = a.cfg.nextState(a.state, a.score)
	a.base, a.baseAt = snap, now
	return a.state, a.score, prev, a.dominant
}

// storeStale caches a successful response for degraded-mode serving.
func (a *admission) storeStale(endpoint string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		return
	}
	a.mu.Lock()
	a.stale[endpoint] = staleEntry{body: body, stored: a.now()}
	a.mu.Unlock()
}

// staleFor returns the cached response for endpoint if it is within the
// TTL, with its age.
func (a *admission) staleFor(endpoint string) ([]byte, time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.stale[endpoint]
	if !ok {
		return nil, 0, false
	}
	age := a.now().Sub(e.stored)
	if age > a.cfg.StaleTTL {
		return nil, 0, false
	}
	return e.body, age, true
}

// admit gates one assignment request. It returns true when the request
// was fully answered here (stale snapshot or shed) and the handler must
// not compute.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	a := s.admission
	if a == nil {
		return false
	}
	_, asp := obs.Child(r.Context(), "service.admission")
	state, score, prev, dominant := a.refresh()
	asp.SetAttr(obs.Str("state", state.String()), obs.F64("score", score))
	asp.End()
	if state != prev {
		// Journal the transition under the trace that triggered the
		// re-score, then dump on shed entry: the dump must carry the
		// trace id of the request that tipped the controller over.
		trace := obs.SpanFromContext(r.Context()).TraceID()
		s.jAdmission.Record(state.String(), trace,
			obs.Str("from", prev.String()),
			obs.F64("score", score),
			obs.Str("dominant", dominant))
		if state == AdmissionShed {
			s.opts.Flight.Dump("admission-shed")
		}
	}
	switch state {
	case AdmissionShed:
		s.countAdmission("shed", state, score)
		if reg := s.opts.Metrics; reg != nil {
			reg.Counter(nAdmShedComp, hAdmShedComp, obs.L("component", dominant)).Inc()
		}
		s.log.Warn("admission: shedding assignment load",
			"endpoint", endpoint, "score", score, "dominant", dominant)
		w.Header().Set("Retry-After",
			strconv.Itoa(int((a.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": fmt.Sprintf("cluster health score %.2f: assignment load shed, retry later", score),
		})
		return true
	case AdmissionDegraded:
		if body, age, ok := a.staleFor(endpoint); ok {
			s.countAdmission("stale", state, score)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Diacap-Stale", strconv.FormatFloat(age.Seconds(), 'f', 0, 64))
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			return true
		}
		// Cache miss: compute once so there is a snapshot to serve.
		s.countAdmission("accept", state, score)
		return false
	default:
		s.countAdmission("accept", state, score)
		return false
	}
}
