package service

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"diacap/internal/live"
	"diacap/internal/loadgen"
)

// flapHealth cycles through its snapshots forever, so the admission
// controller keeps re-scoring a quiet→storm→quiet oscillation and the
// service flaps between accept and shed for as long as the test runs.
type flapHealth struct {
	mu    sync.Mutex
	snaps []live.HealthSnapshot
	i     int
}

func (h *flapHealth) HealthSnapshot() live.HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.snaps[h.i%len(h.snaps)]
	h.i++
	return s
}

// TestResolveStormAtomicity is the regression test for the mid-batch
// shed bug class: it races a loadgen overload run (real TCP, keep-alive
// connections, concurrent batches) against both an admission controller
// flapping in and out of shed and a KillServer/RestartServer storm on
// the shard plane. The load generator's strict classifier is the
// assertion: every response must be a complete 200 batch (all
// coordinates answered) or a whole-request 429 with Retry-After. A
// batch truncated by a shed taking effect mid-request, a 429 missing
// Retry-After, or a response straddling two snapshots' shapes would all
// surface as non-429 errors and fail the run.
func TestResolveStormAtomicity(t *testing.T) {
	quiet := live.HealthSnapshot{Servers: 4, Clients: 10}
	storm := live.HealthSnapshot{
		Servers: 4, DeadServers: 2, Clients: 10,
		Failovers: 50, ReconnectAttempts: 500,
		Deliveries: 100, LagSpreadSum: 100 * 1000,
	}
	s, p := resolveServer(t, 2, Options{Admission: &AdmissionConfig{
		Health: &flapHealth{snaps: []live.HealthSnapshot{quiet, storm}},
		Window: 500 * time.Microsecond,
	}})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// The control-plane storm: kill and restart every server but one in
	// a tight loop. Each op republishes the snapshot and bumps the
	// epoch, so in-flight batches keep racing snapshot swaps. KillServer
	// legitimately refuses when the survivors lack capacity; errors are
	// expected, orphaned state is not.
	stormCtx, stopStorm := context.WithCancel(context.Background())
	var stormDone sync.WaitGroup
	stormDone.Add(1)
	go func() {
		defer stormDone.Done()
		for k := 1; stormCtx.Err() == nil; k = 1 + k%3 {
			_, _, _ = p.KillServer(stormCtx, k)
			_, _ = p.RestartServer(stormCtx, k)
		}
	}()

	runner, err := loadgen.New(loadgen.Config{
		URL:   srv.URL,
		Batch: 64,
		Seed:  3,
		Phases: []loadgen.Phase{
			{Name: "overload", Duration: 1500 * time.Millisecond, Workers: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(context.Background())
	stopStorm()
	stormDone.Wait()
	if err != nil {
		t.Fatal(err)
	}

	ps := res.Phases[0]
	t.Logf("storm run: %d ok, %d shed, %d errors over %v", ps.OK, ps.Shed, ps.Errors, ps.Duration)
	if ps.Errors != 0 {
		t.Fatalf("%d protocol violations under storm (first: %s)", ps.Errors, ps.FirstError)
	}
	if ps.OK == 0 {
		t.Fatal("no request succeeded; the storm run exercised nothing")
	}
	if ps.Shed == 0 {
		t.Fatal("no request was shed; the flapping admission controller never fired")
	}
	if ps.OK+ps.Shed != ps.Requests {
		t.Fatalf("accounting broken: %+v", ps)
	}
}
