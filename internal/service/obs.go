package service

import (
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"diacap/internal/assign"
	"diacap/internal/obs"
)

// LiveStatus is the view of a live server cluster the service fronts.
// *live.Cluster satisfies it; /healthz reports the dead-server count so
// an orchestrator probing the HTTP plane sees cluster degradation.
type LiveStatus interface {
	// NumServers is the configured cluster size.
	NumServers() int
	// DeadServers lists the indices of servers that have failed.
	DeadServers() []int
}

// endpoints is the closed label set for per-endpoint metrics; anything
// else (bad paths, probes) is folded into "other" so scrape cardinality
// stays bounded no matter what clients request.
var endpoints = []string{
	"/healthz",
	"/v1/algorithms",
	"/v1/assign",
	"/v1/assign-coords",
	"/v1/assign-one",
	"/v1/assign-batch",
	"/v1/placement",
	"/v1/shard/assign",
	"/v1/shard/snapshot",
	"/metrics",
	"/debug/vars",
	"/debug/trace",
	"/debug/flight",
}

func normalizeEndpoint(path string) string {
	for _, e := range endpoints {
		if path == e {
			return e
		}
	}
	if strings.HasPrefix(path, "/debug/pprof/") {
		return "/debug/pprof"
	}
	return "other"
}

// statusWriter captures the response code for the metrics middleware.
// It deliberately does not forward Flush/Hijack: every endpoint writes a
// small JSON or text body in one shot.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Metric names and help strings shared between the middleware and
// PreregisterMetrics, so the exposed schema is identical either way.
const (
	nHTTPRequests   = "diacap_http_requests_total"
	hHTTPRequests   = "HTTP requests served, by endpoint and status code."
	nHTTPSeconds    = "diacap_http_request_seconds"
	hHTTPSeconds    = "HTTP request handling time in seconds."
	nHTTPErrors     = "diacap_http_errors_total"
	hHTTPErrors     = "HTTP requests answered with a 4xx/5xx status."
	nHTTPInflight   = "diacap_http_inflight_requests"
	hHTTPInflight   = "Requests currently being handled."
	nAssignD        = "diacap_assign_d_ms"
	hAssignD        = "Maximum interaction-path length D (= minimum feasible lag) of the last assignment, in ms."
	nAssignSec      = "diacap_assign_seconds"
	hAssignSec      = "Assignment computation time in seconds."
	nAdmDecisions   = "diacap_admission_decisions_total"
	hAdmDecisions   = "Admission decisions on the assignment endpoints, by outcome."
	nAdmScore       = "diacap_admission_health_score"
	hAdmScore       = "Latest cluster health score in [0,1] driving admission control."
	nAdmState       = "diacap_admission_state"
	hAdmState       = "Admission state: 0 accept, 1 degraded (serve stale), 2 shed."
	nAdmShedComp    = "diacap_admission_shed_component_total"
	hAdmShedComp    = "Shed (429) responses, by the dominant health-score component that drove the score."
	nResolveClients = "diacap_resolve_clients_total"
	hResolveClients = "Clients resolved by the serving endpoints, by endpoint (batch requests add their batch size)."
)

// admissionDecisions is the closed label set of admission outcomes.
var admissionDecisions = []string{"accept", "stale", "shed"}

// healthComponents is the closed label set of health-score components
// (see healthParts); "none" covers an all-zero score.
var healthComponents = []string{"dead_servers", "failover_rate", "reconnect_rate", "lag_spread", "none"}

// PreregisterMetrics creates the service's metric families (zero-valued)
// ahead of any traffic, so the first scrape already exposes the full
// schema: request counters and latency histograms per endpoint, and the
// assignment-D gauge per paper algorithm. Idempotent.
func PreregisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge(nHTTPInflight, hHTTPInflight)
	for _, ep := range endpoints {
		reg.Counter(nHTTPRequests, hHTTPRequests,
			obs.L("endpoint", ep), obs.L("code", "200"))
		reg.Histogram(nHTTPSeconds, hHTTPSeconds,
			obs.SecondsBuckets, obs.L("endpoint", ep))
		reg.Counter(nHTTPErrors, hHTTPErrors, obs.L("endpoint", ep))
	}
	for _, alg := range assign.All() {
		reg.Gauge(nAssignD, hAssignD, obs.L("algorithm", alg.Name()))
		reg.Histogram(nAssignSec, hAssignSec,
			obs.SecondsBuckets, obs.L("algorithm", alg.Name()))
	}
	for _, d := range admissionDecisions {
		reg.Counter(nAdmDecisions, hAdmDecisions, obs.L("decision", d))
	}
	for _, c := range healthComponents {
		reg.Counter(nAdmShedComp, hAdmShedComp, obs.L("component", c))
	}
	for _, ep := range []string{"/v1/assign-one", "/v1/assign-batch"} {
		reg.Counter(nResolveClients, hResolveClients, obs.L("endpoint", ep))
	}
	reg.Gauge(nAdmScore, hAdmScore)
	reg.Gauge(nAdmState, hAdmState)
}

// countAdmission publishes one admission decision plus the score and
// state it was made under.
func (s *Server) countAdmission(decision string, state AdmissionState, score float64) {
	reg := s.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter(nAdmDecisions, hAdmDecisions, obs.L("decision", decision)).Inc()
	reg.Gauge(nAdmScore, hAdmScore).Set(score)
	reg.Gauge(nAdmState, hAdmState).Set(float64(state))
}

// instrument is the outermost middleware: it wraps even the recover and
// timeout layers so their 500/503 responses are counted under the real
// status code, and tracks in-flight requests across the whole chain.
func (s *Server) instrument(next http.Handler) http.Handler {
	reg := s.opts.Metrics
	inflight := reg.Gauge(nHTTPInflight, hHTTPInflight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := normalizeEndpoint(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		inflight.Inc()
		start := time.Now()
		defer func() {
			inflight.Dec()
			code := sw.status
			if code == 0 {
				code = http.StatusOK
			}
			reg.Counter(nHTTPRequests, hHTTPRequests,
				obs.L("endpoint", ep), obs.L("code", strconv.Itoa(code))).Inc()
			// Exemplar: the latest trace id that landed in each latency
			// bucket, so a histogram outlier links to its span tree.
			reg.Histogram(nHTTPSeconds, hHTTPSeconds,
				obs.SecondsBuckets, obs.L("endpoint", ep)).
				ObserveExemplar(time.Since(start).Seconds(),
					obs.SpanFromContext(r.Context()).TraceID())
			if code >= 400 {
				reg.Counter(nHTTPErrors, hHTTPErrors,
					obs.L("endpoint", ep)).Inc()
			}
		}()
		next.ServeHTTP(sw, r)
	})
}

// mountDebug adds /metrics, /debug/vars and (opt-in) /debug/pprof to the
// mux. pprof is off by default: profile endpoints reveal internals and
// cost CPU, so exposure is an explicit operator decision.
func (s *Server) mountDebug() {
	if s.opts.Metrics != nil {
		s.mux.Handle("/metrics", s.opts.Metrics.Handler())
		s.mux.Handle("/debug/vars", s.opts.Metrics.VarsHandler())
	}
	if s.opts.Tracer != nil {
		s.mux.Handle("/debug/trace", s.opts.Tracer.Handler())
	}
	// The recorder always exists (fill creates one), so the flight dump
	// is always readable.
	s.mux.Handle("/debug/flight", s.opts.Flight.Handler())
	if s.opts.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// fail answers err as JSON and logs it with the request context: 4xx at
// Warn (client mistakes), everything else at Error. Extra attrs carry
// handler-specific context (node count, algorithm, duration).
func (s *Server) fail(w http.ResponseWriter, r *http.Request, err error, attrs ...any) {
	status := errStatus(err)
	logAttrs := append([]any{
		"endpoint", r.URL.Path,
		"method", r.Method,
		"status", status,
		"error", err.Error(),
	}, attrs...)
	if status >= 400 && status < 500 {
		s.log.Warn("request failed", logAttrs...)
	} else {
		s.log.Error("request failed", logAttrs...)
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// recordAssignD publishes the freshly computed D — the minimum feasible
// lag δ of the paper — per algorithm, plus a compute-time histogram.
func (s *Server) recordAssignD(algorithm string, d float64, elapsed time.Duration) {
	if s.opts.Metrics == nil {
		return
	}
	s.opts.Metrics.Gauge(nAssignD, hAssignD,
		obs.L("algorithm", algorithm)).Set(d)
	s.opts.Metrics.Histogram(nAssignSec, hAssignSec,
		obs.SecondsBuckets, obs.L("algorithm", algorithm)).
		Observe(elapsed.Seconds())
}

// durationMs renders a duration for structured logs in the unit the rest
// of the system speaks (latencies and D are all milliseconds).
func durationMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
