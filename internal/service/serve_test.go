package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestGracefulShutdownDrainsInflight: on shutdown, a request already in
// flight completes (http.Server.Shutdown drains it) while new
// connections are refused the moment the listener closes.
func TestGracefulShutdownDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	s := New(Options{
		MaxNodes:     256,
		DrainTimeout: 10 * time.Second,
		testHookAssign: func() {
			close(entered)
			<-release
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	// A slow /v1/assign enters the handler and parks on the hook.
	body, err := json.Marshal(AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		body   string
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/assign", "application/json", strings.NewReader(string(body)))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{status: resp.StatusCode, body: string(b)}
	}()
	<-entered

	// Trigger shutdown with the request still in flight (the SIGTERM
	// path: capserver wires the signal into this context).
	cancel()

	// New connections must be refused once the listener closes. Shutdown
	// closes it before draining, so this converges quickly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after shutdown started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	select {
	case r := <-resCh:
		t.Fatalf("in-flight request finished before release: %+v", r)
	default:
	}

	// Release the handler: the drained request completes normally.
	close(release)
	r := <-resCh
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d during drain: %s", r.status, r.body)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after a clean drain", err)
	}
}

// TestGracefulShutdownDrainDeadline: a handler that outlives the drain
// timeout is force-closed and Serve reports the overrun instead of
// hanging forever.
func TestGracefulShutdownDrainDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	s := New(Options{
		MaxNodes:     256,
		DrainTimeout: 50 * time.Millisecond,
		testHookAssign: func() {
			close(entered)
			<-release
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()

	body, err := json.Marshal(AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/assign", "application/json", strings.NewReader(string(body)))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()
	select {
	case err := <-served:
		if err == nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Serve error = %v, want a drain deadline overrun", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve hung past the drain deadline")
	}
}
