package service

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"diacap/internal/live"
	"diacap/internal/obs"
)

// stubHealth serves scripted snapshots: each HealthSnapshot call pops
// the next one (the last repeats).
type stubHealth struct {
	mu    sync.Mutex
	snaps []live.HealthSnapshot
	i     int
}

func (h *stubHealth) HealthSnapshot() live.HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.i < len(h.snaps)-1 {
		h.i++
		return h.snaps[h.i-1]
	}
	return h.snaps[len(h.snaps)-1]
}

func TestHealthScoreComponents(t *testing.T) {
	base := live.HealthSnapshot{Servers: 8, Clients: 40}
	cases := []struct {
		name string
		cur  live.HealthSnapshot
		want float64
	}{
		{"quiet", base, 0},
		{"half dead", live.HealthSnapshot{Servers: 8, DeadServers: 4, Clients: 40}, 0.225},
		{"failover storm", live.HealthSnapshot{Servers: 8, Clients: 40, Failovers: 10}, 0.20},
		{"reconnect storm", live.HealthSnapshot{Servers: 8, Clients: 40, ReconnectAttempts: 400}, 0.20},
		{"lag blowout", live.HealthSnapshot{Servers: 8, Clients: 40, Deliveries: 100, LagSpreadSum: 100 * 50}, 0.15},
		{"everything at once", live.HealthSnapshot{
			Servers: 8, DeadServers: 8, Clients: 40,
			Failovers: 10, ReconnectAttempts: 400,
			Deliveries: 100, LagSpreadSum: 100 * 50,
		}, 1.0},
	}
	for _, tc := range cases {
		if got := healthScore(base, tc.cur, 10); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: score = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Deltas are against the base: absolute counter values don't matter.
	prev := live.HealthSnapshot{Servers: 8, Clients: 40, Failovers: 100, ReconnectAttempts: 1000}
	cur := prev
	if got := healthScore(prev, cur, 10); got != 0 {
		t.Errorf("unchanged counters scored %v, want 0", got)
	}
}

// TestAdmissionStateMachineHysteresis pins the exit margins: a score
// oscillating just below an entry threshold cannot flap the state.
func TestAdmissionStateMachineHysteresis(t *testing.T) {
	cfg := AdmissionConfig{DegradedScore: 0.25, ShedScore: 0.6, ExitMargin: 0.05}
	steps := []struct {
		score float64
		want  AdmissionState
	}{
		{0.1, AdmissionAccept},
		{0.24, AdmissionAccept}, // below entry
		{0.30, AdmissionDegraded},
		{0.22, AdmissionDegraded}, // inside the exit band: holds
		{0.19, AdmissionAccept},   // below entry − margin: exits
		{0.70, AdmissionShed},     // straight from accept to shed
		{0.57, AdmissionShed},     // inside the shed exit band: holds
		{0.54, AdmissionDegraded}, // below shed − margin, above degraded
		{0.61, AdmissionShed},
		{0.10, AdmissionAccept}, // collapse all the way down
	}
	state := AdmissionAccept
	for i, st := range steps {
		state = cfg.nextState(state, st.score)
		if state != st.want {
			t.Fatalf("step %d (score %v): state = %v, want %v", i, st.score, state, st.want)
		}
	}
}

// admissionServer builds a service whose admission controller sees the
// scripted snapshots with zero refresh spacing (every request re-scores).
func admissionServer(t *testing.T, reg *obs.Registry, snaps ...live.HealthSnapshot) *Server {
	t.Helper()
	return New(Options{
		MaxNodes: 256,
		Metrics:  reg,
		Admission: &AdmissionConfig{
			Health: &stubHealth{snaps: snaps},
			Window: time.Nanosecond,
		},
	})
}

func TestAdmissionShedsWith429AndRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	// Maximal churn: everything saturated → score 1 → shed immediately.
	sick := live.HealthSnapshot{
		Servers: 4, DeadServers: 4, Clients: 10,
		Failovers: 100, ReconnectAttempts: 10000,
		Deliveries: 100, LagSpreadSum: 100 * 1000,
	}
	s := admissionServer(t, reg, live.HealthSnapshot{Servers: 4, Clients: 10}, sick)
	// First request scores the quiet snapshot and computes.
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("quiet cluster: status = %d: %s", rec.Code, rec.Body.String())
	}
	// Second request sees the sick snapshot: shed, never computed.
	rec = postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("sick cluster: status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	retry, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || retry <= 0 {
		t.Fatalf("Retry-After = %q, want a positive integer", rec.Header().Get("Retry-After"))
	}
	if body := decodeBody[map[string]string](t, rec); body["error"] == "" {
		t.Fatalf("shed response has no JSON error: %v", body)
	}
	if got := reg.Counter(nAdmDecisions, "", obs.L("decision", "shed")).Value(); got != 1 {
		t.Errorf("shed decisions = %d, want 1", got)
	}
	if got := reg.Counter(nAdmDecisions, "", obs.L("decision", "accept")).Value(); got != 1 {
		t.Errorf("accept decisions = %d, want 1", got)
	}
	if st := reg.Gauge(nAdmState, "").Value(); st != float64(AdmissionShed) {
		t.Errorf("state gauge = %v, want %v", st, float64(AdmissionShed))
	}
}

func TestAdmissionDegradedServesStaleSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	quiet := live.HealthSnapshot{Servers: 4, Clients: 10}
	// 2 of 4 dead and a mild reconnect trickle: degraded, not shed.
	limping := live.HealthSnapshot{Servers: 4, DeadServers: 2, Clients: 10, ReconnectAttempts: 40}
	s := admissionServer(t, reg, quiet, limping)
	req := AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	}
	// Request 1: quiet → fresh computation, cached as the stale snapshot.
	rec := postJSON(t, s, "/v1/assign", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("quiet: status = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Diacap-Stale") != "" {
		t.Fatal("fresh response carries the stale header")
	}
	fresh := decodeBody[AssignResponse](t, rec)

	// Request 2: degraded → the cached snapshot, marked stale.
	rec = postJSON(t, s, "/v1/assign", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded: status = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Diacap-Stale") == "" {
		t.Fatal("degraded response is missing the X-Diacap-Stale header")
	}
	stale := decodeBody[AssignResponse](t, rec)
	if stale.D != fresh.D || len(stale.Assignment) != len(fresh.Assignment) {
		t.Fatalf("stale snapshot %v does not match the cached response %v", stale, fresh)
	}
	if got := reg.Counter(nAdmDecisions, "", obs.L("decision", "stale")).Value(); got != 1 {
		t.Errorf("stale decisions = %d, want 1", got)
	}
}

func TestAdmissionDegradedCacheMissComputes(t *testing.T) {
	// Degraded from the very first request: no snapshot cached yet, so
	// the request computes (and seeds the cache) instead of failing.
	// 3 of 4 dead scores 0.3375 instantaneously — degraded without any
	// rate components.
	limping := live.HealthSnapshot{Servers: 4, DeadServers: 3, Clients: 10}
	s := admissionServer(t, nil, limping)
	req := AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	}
	rec := postJSON(t, s, "/v1/assign", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("cache miss: status = %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Diacap-Stale") != "" {
		t.Fatal("computed cache-miss response carries the stale header")
	}
	rec = postJSON(t, s, "/v1/assign", req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Diacap-Stale") == "" {
		t.Fatalf("second degraded request: status %d, stale header %q",
			rec.Code, rec.Header().Get("X-Diacap-Stale"))
	}
}

// TestServiceCapacityInfeasibleTypedError covers the service path of
// the churn-burst guarantee: a request whose capacities cannot hold its
// clients yields a typed HTTP error (422 + JSON), never a panic or a
// capacity-violating assignment.
func TestServiceCapacityInfeasibleTypedError(t *testing.T) {
	s := testServer()
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:     smallMatrix(t),
		Servers:    []int{0, 1},
		Algorithm:  "Greedy",
		Capacities: []int{3, 3}, // 6 slots for 20 clients
		Seed:       ptr[int64](1),
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", rec.Code, rec.Body.String())
	}
	if body := decodeBody[map[string]string](t, rec); body["error"] == "" {
		t.Fatalf("infeasible request has no JSON error: %v", body)
	}

	// Tight-but-sufficient capacities must still be honored exactly.
	rec = postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:     smallMatrix(t),
		Servers:    []int{0, 1},
		Algorithm:  "Greedy",
		Capacities: []int{10, 10},
		Seed:       ptr[int64](1),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("feasible tight caps: status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignResponse](t, rec)
	for k, l := range resp.Loads {
		if l > 10 {
			t.Fatalf("server %d load %d violates capacity 10", k, l)
		}
	}
}

// TestAdmissionAgainstRealCluster drives the controller from an actual
// live.Cluster's telemetry: healthy accepts; after kills and a failover
// storm the service sheds with 429 instead of timing out.
func TestAdmissionAgainstRealCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a TCP cluster; skipped with -short")
	}
	m, servers, clients, in := e2eInstance(t, 16, 4, 5)
	a := make([]int, in.NumClients())
	for i := range a {
		a[i] = i % in.NumServers()
	}
	off, err := in.ComputeOffsets(a)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := live.StartCluster(live.ClusterConfig{
		Instance:            in,
		Assignment:          a,
		Delta:               off.D,
		Offsets:             off,
		LatenessTolerance:   35,
		ReconnectJitterSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	s := New(Options{
		MaxNodes: 256,
		Live:     cluster,
		Admission: &AdmissionConfig{
			Health: cluster,
			Window: time.Nanosecond,
			// Thresholds scaled so that dead servers + failover churn,
			// which a 4-server fixture can realistically produce, cross
			// into shedding.
			DegradedScore: 0.10,
			ShedScore:     0.20,
			RetryAfter:    time.Second,
		},
	})
	req := AssignRequest{
		Matrix:  [][]float64(m),
		Servers: servers,
		Clients: clients,
		Seed:    ptr[int64](3),
	}
	if rec := postJSON(t, s, "/v1/assign", req); rec.Code != http.StatusOK {
		t.Fatalf("healthy cluster: status = %d: %s", rec.Code, rec.Body.String())
	}

	// Kill half the cluster and fail over: dead fraction 0.5 alone puts
	// the score at 0.225 ≥ ShedScore.
	if err := cluster.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Kill(2); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Failover(); err != nil {
		t.Fatal(err)
	}
	snap := cluster.HealthSnapshot()
	if snap.DeadServers != 2 || snap.Failovers != 1 || snap.ReconnectAttempts == 0 {
		t.Fatalf("health snapshot did not register the storm: %+v", snap)
	}

	rec := postJSON(t, s, "/v1/assign", req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("degraded cluster: status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response is missing Retry-After")
	}
}
