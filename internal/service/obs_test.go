package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"diacap/internal/obs"
)

type stubLive struct {
	servers int
	dead    []int
}

func (s stubLive) NumServers() int    { return s.servers }
func (s stubLive) DeadServers() []int { return s.dead }

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMetricsEndpointServesSchemaBeforeTraffic(t *testing.T) {
	reg := obs.NewRegistry()
	PreregisterMetrics(reg)
	s := New(Options{MaxNodes: 256, Metrics: reg})

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	// The full schema is visible on the very first scrape: request
	// counters and latency histograms per endpoint, and the paper's
	// assignment-D gauge per algorithm.
	for _, want := range []string{
		`diacap_http_requests_total{code="200",endpoint="/v1/assign"}`,
		`diacap_http_request_seconds_bucket{endpoint="/v1/assign",le="+Inf"}`,
		`diacap_http_inflight_requests`,
		`diacap_assign_d_ms{algorithm="Greedy"}`,
		`diacap_assign_d_ms{algorithm="Distributed-Greedy"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("first scrape missing %q", want)
		}
	}
}

func TestInstrumentCountsRequests(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{MaxNodes: 256, Metrics: reg})

	get(t, s, "/healthz")
	get(t, s, "/healthz")
	get(t, s, "/no/such/path")
	postJSON(t, s, "/v1/assign", map[string]any{"matrix": [][]float64{{0}}})

	if got := reg.Counter(nHTTPRequests, "", obs.L("endpoint", "/healthz"), obs.L("code", "200")).Value(); got != 2 {
		t.Errorf("healthz 200 count = %d, want 2", got)
	}
	// Unknown paths fold into "other" so scrape cardinality stays bounded.
	if got := reg.Counter(nHTTPRequests, "", obs.L("endpoint", "other"), obs.L("code", "404")).Value(); got != 1 {
		t.Errorf("other 404 count = %d, want 1", got)
	}
	// A bad assign request (1-node matrix, no servers) is a client error:
	// counted both per-code and in the errors family.
	if got := reg.Counter(nHTTPErrors, "", obs.L("endpoint", "/v1/assign")).Value(); got != 1 {
		t.Errorf("assign errors = %d, want 1", got)
	}
	if h := reg.Histogram(nHTTPSeconds, "", obs.SecondsBuckets, obs.L("endpoint", "/healthz")); h.Count() != 2 {
		t.Errorf("healthz latency observations = %d, want 2", h.Count())
	}
	if v := reg.Gauge(nHTTPInflight, "").Value(); v != 0 {
		t.Errorf("inflight after quiesce = %g, want 0", v)
	}
}

func TestAssignRecordsDGauge(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Options{MaxNodes: 256, Metrics: reg})
	rec := postJSON(t, s, "/v1/assign", map[string]any{
		"matrix":    smallMatrix(t),
		"servers":   []int{0, 1, 2},
		"algorithm": "Greedy",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("assign status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[map[string]any](t, rec)
	wantD, ok := resp["d"].(float64)
	if !ok || wantD <= 0 {
		t.Fatalf("response d = %v", resp["d"])
	}
	if got := reg.Gauge(nAssignD, "", obs.L("algorithm", "Greedy")).Value(); got != wantD {
		t.Errorf("assign-D gauge = %g, response D = %g", got, wantD)
	}
	if h := reg.Histogram(nAssignSec, "", obs.SecondsBuckets, obs.L("algorithm", "Greedy")); h.Count() != 1 {
		t.Errorf("assign-seconds observations = %d, want 1", h.Count())
	}
	// The traced run also feeds the algorithm-progress metrics.
	if got := reg.Counter("diacap_algo_steps_total", "",
		obs.L("algorithm", "Greedy"), obs.L("kind", obs.KindBatch)).Value(); got == 0 {
		t.Error("no algo batch steps recorded through the service trace hook")
	}
}

func TestHealthzReportsLiveCluster(t *testing.T) {
	s := New(Options{MaxNodes: 256, Live: stubLive{servers: 4, dead: []int{2}}})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := decodeBody[map[string]any](t, rec)
	if body["status"] != "degraded" {
		t.Errorf("status = %v, want degraded with a dead server", body["status"])
	}
	if body["version"] == "" {
		t.Error("healthz missing version")
	}
	liveSec, ok := body["live"].(map[string]any)
	if !ok {
		t.Fatalf("healthz live section = %v", body["live"])
	}
	if liveSec["servers"] != float64(4) || liveSec["deadServers"] != float64(1) {
		t.Errorf("live section = %v", liveSec)
	}

	// Healthy cluster: plain ok.
	s2 := New(Options{MaxNodes: 256, Live: stubLive{servers: 4}})
	if b := decodeBody[map[string]any](t, get(t, s2, "/healthz")); b["status"] != "ok" {
		t.Errorf("healthy status = %v", b["status"])
	}
}

func TestPprofGating(t *testing.T) {
	// Off by default even with metrics on.
	s := New(Options{MaxNodes: 256, Metrics: obs.NewRegistry()})
	if rec := get(t, s, "/debug/pprof/cmdline"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status = %d, want 404", rec.Code)
	}
	on := New(Options{MaxNodes: 256, Metrics: obs.NewRegistry(), EnablePprof: true})
	if rec := get(t, on, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof with opt-in: status = %d, want 200", rec.Code)
	}
}

func TestNoMetricsNoDebugEndpoints(t *testing.T) {
	s := New(Options{MaxNodes: 256})
	for _, path := range []string{"/metrics", "/debug/vars"} {
		if rec := get(t, s, path); rec.Code != http.StatusNotFound {
			t.Errorf("%s without a registry: status = %d, want 404", path, rec.Code)
		}
	}
}

func TestErrorPathsLogRequestContext(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "warn")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{MaxNodes: 256, Logger: logger})
	rec := postJSON(t, s, "/v1/assign", map[string]any{
		"matrix":    smallMatrix(t),
		"servers":   []int{0},
		"algorithm": "no-such-algorithm",
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	out := buf.String()
	for _, want := range []string{
		"request failed",
		"endpoint=/v1/assign",
		"status=400",
		"nodes=20",
		"algorithm=no-such-algorithm",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("error log missing %q:\n%s", want, out)
		}
	}
}

func TestNormalizeEndpoint(t *testing.T) {
	cases := map[string]string{
		"/healthz":             "/healthz",
		"/v1/assign":           "/v1/assign",
		"/debug/pprof/profile": "/debug/pprof",
		"/v1/assign/extra":     "other",
		"/":                    "other",
	}
	for path, want := range cases {
		if got := normalizeEndpoint(path); got != want {
			t.Errorf("normalizeEndpoint(%q) = %q, want %q", path, got, want)
		}
	}
}
