package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"diacap/internal/latency"
)

// padCoord widens a JSON number array to the fixed Coord layout the
// codec produces (missing z and h are zero).
func padCoord(vals []float64) latency.Coord {
	var c latency.Coord
	if len(vals) > 0 {
		c.X = vals[0]
	}
	if len(vals) > 1 {
		c.Y = vals[1]
	}
	if len(vals) > 2 {
		c.Z = vals[2]
	}
	if len(vals) > 3 {
		c.H = vals[3]
	}
	return c
}

// decodeStrict is the reference decoder: encoding/json with unknown
// keys rejected and the full input consumed.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil {
		return errors.New("trailing JSON value")
	}
	return nil
}

// FuzzAssignBatchDecode drives arbitrary bytes through the serving
// codec in both batch and unary modes and holds it to three contracts:
//
//   - It never panics, whatever the input.
//   - Every rejection is a typed *httpError with a serving-path status
//     (400 syntax, 413 size, 422 semantics) — nothing the handlers
//     would render as a 500.
//   - Every acceptance agrees with encoding/json: the same body decodes
//     into the documented request struct with the same coordinates and
//     epoch, and every parsed coordinate is valid (finite, height ≥ 0).
//     The codec may be stricter than encoding/json (duplicate keys,
//     string escapes in keys) but never more lenient.
func FuzzAssignBatchDecode(f *testing.F) {
	seeds := []string{
		`{"coords":[[1,2]]}`,
		`{"coords":[[1,2],[3,4,5],[6,7,8,9]],"epoch":3}`,
		`{"coord":[25.5,-3e2,1,0.5]}`,
		`{"coords":[],"epoch":7}`,
		`{"coords":[[1e999,0]]}`,
		`{"coords":[[NaN,1]]}`,
		`{"coords":[[1,2,3,-1]]}`,
		`{"epoch":18446744073709551615,"coords":[[0,0]]}`,
		`{"epoch":007,"coords":[[0,0]]}`,
		`{"coords":[[+1,.5],[1.,2]]}`,
		`{"coords":[[1,2]],"coords":[[3,4]]}`,
		`{"coords":[[1,2]]}{"coords":[[3,4]]}`,
		`{"coords":[[1,2],[3,4],[5,6],[7,8],[9,10]]}`,
		`{"unknown":1}`,
		`{}`,
		`[]`,
		`{"coords":[[1,2]`,
		"{\"coords\":[[1,2]]}\x00",
		` { "coords" : [ [ 1 , 2 ] ] , "epoch" : 12 } `,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	const maxBatch = 4
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := getServeScratch()
		defer putServeScratch(sc)
		for _, unary := range []bool{false, true} {
			sc.body = append(sc.body[:0], data...)
			epoch, hasEpoch, err := parseResolveRequest(sc, maxBatch, unary)

			if err != nil {
				var he *httpError
				if !errors.As(err, &he) {
					t.Fatalf("unary=%v: rejection is %T, not *httpError: %v", unary, err, err)
				}
				switch he.status {
				case http.StatusBadRequest, http.StatusRequestEntityTooLarge, http.StatusUnprocessableEntity:
				default:
					t.Fatalf("unary=%v: rejection status %d, want 400/413/422: %v", unary, he.status, he)
				}
				continue
			}

			if n := len(sc.coords); n < 1 || (!unary && n > maxBatch) || (unary && n != 1) {
				t.Fatalf("unary=%v: accepted %d coords (max %d)", unary, n, maxBatch)
			}
			var want [][]float64
			var wantEpoch *uint64
			if unary {
				var req AssignOneRequest
				if derr := decodeStrict(data, &req); derr != nil {
					t.Fatalf("unary codec accepted %q but encoding/json rejects it: %v", data, derr)
				}
				want, wantEpoch = [][]float64{req.Coord}, req.Epoch
			} else {
				var req AssignBatchRequest
				if derr := decodeStrict(data, &req); derr != nil {
					t.Fatalf("batch codec accepted %q but encoding/json rejects it: %v", data, derr)
				}
				want, wantEpoch = req.Coords, req.Epoch
			}
			if len(want) != len(sc.coords) {
				t.Fatalf("unary=%v: codec parsed %d coords, encoding/json %d", unary, len(sc.coords), len(want))
			}
			for i, vals := range want {
				if got, ref := sc.coords[i], padCoord(vals); got != ref {
					t.Fatalf("unary=%v: coord %d: codec %+v, encoding/json %+v", unary, i, got, ref)
				}
				if verr := sc.coords[i].Valid(); verr != nil {
					t.Fatalf("unary=%v: accepted invalid coordinate %d: %v", unary, i, verr)
				}
			}
			if hasEpoch != (wantEpoch != nil) {
				t.Fatalf("unary=%v: codec hasEpoch=%v, encoding/json epoch present=%v", unary, hasEpoch, wantEpoch != nil)
			}
			if hasEpoch && epoch != *wantEpoch {
				t.Fatalf("unary=%v: codec epoch %d, encoding/json %d", unary, epoch, *wantEpoch)
			}
		}
	})
}
