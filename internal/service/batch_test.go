package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"diacap/internal/latency"
	"diacap/internal/live"
	"diacap/internal/shard"
)

// resolveServer builds a service over a joined shard plane: 4 servers,
// 40 clients, the first 10 joined.
func resolveServer(t testing.TB, shards int, opts Options) (*Server, *shard.Plane) {
	t.Helper()
	cs, err := latency.GenerateCoords(latency.DefaultConfig(44), 21)
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.New(shard.Options{Shards: shards, Servers: cs[:4], Clients: cs[4:]})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 10; c++ {
		if _, err := p.Join(context.Background(), c); err != nil {
			t.Fatal(err)
		}
	}
	opts.Shard = p
	return New(opts), p
}

// postRaw posts a raw body, bypassing the JSON marshalling helpers so
// malformed bodies reach the codec untouched.
func postRaw(t testing.TB, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestAssignBatchResolvesAgainstSnapshot(t *testing.T) {
	s, p := resolveServer(t, 2, Options{})
	// Mixed arities: [x,y], [x,y,z], [x,y,z,h].
	body := `{"coords":[[10,20],[30,40,5],[60,10,0,2.5]]}`
	rec := postRaw(t, s, "/v1/assign-batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	resp := decodeBody[AssignBatchResponse](t, rec)
	snap := p.Current()
	if resp.Epoch != snap.Epoch || resp.D != snap.D || resp.CertifiedD != snap.CertifiedD {
		t.Fatalf("snapshot echo: %+v, snapshot epoch %d d %v certifiedD %v",
			resp, snap.Epoch, snap.D, snap.CertifiedD)
	}
	if len(resp.Servers) != 3 || len(resp.LatencyMs) != 3 {
		t.Fatalf("result lengths: %+v", resp)
	}
	coords := []latency.Coord{
		{X: 10, Y: 20}, {X: 30, Y: 40, Z: 5}, {X: 60, Y: 10, H: 2.5},
	}
	v := p.View()
	for i, q := range coords {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < v.NumServers(); k++ {
			if !v.Admissible(k) {
				continue
			}
			if d := q.LatencyTo(v.ServerCoord(k)); d < bestD {
				best, bestD = k, d
			}
		}
		if resp.Servers[i] != best || resp.LatencyMs[i] != bestD {
			t.Fatalf("coord %d: got (%d, %v), want (%d, %v)",
				i, resp.Servers[i], resp.LatencyMs[i], best, bestD)
		}
	}
}

func TestAssignOneMatchesBatchEntry(t *testing.T) {
	s, _ := resolveServer(t, 2, Options{})
	batch := decodeBody[AssignBatchResponse](t,
		postRaw(t, s, "/v1/assign-batch", `{"coords":[[25,35,1,0.5]]}`))
	rec := postRaw(t, s, "/v1/assign-one", `{"coord":[25,35,1,0.5]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("unary: status %d: %s", rec.Code, rec.Body.String())
	}
	one := decodeBody[AssignOneResponse](t, rec)
	if one.Server != batch.Servers[0] || one.LatencyMs != batch.LatencyMs[0] ||
		one.Epoch != batch.Epoch || one.D != batch.D || one.CertifiedD != batch.CertifiedD {
		t.Fatalf("unary %+v != batch %+v", one, batch)
	}
}

func TestAssignBatchEpochPinning(t *testing.T) {
	s, p := resolveServer(t, 2, Options{})
	epoch := p.Epoch()
	rec := postRaw(t, s, "/v1/assign-batch",
		fmt.Sprintf(`{"coords":[[1,2]],"epoch":%d}`, epoch))
	if rec.Code != http.StatusOK {
		t.Fatalf("pinned current epoch: status %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := p.Join(context.Background(), 30); err != nil {
		t.Fatal(err)
	}
	rec = postRaw(t, s, "/v1/assign-batch",
		fmt.Sprintf(`{"coords":[[1,2]],"epoch":%d}`, epoch))
	if rec.Code != http.StatusConflict {
		t.Fatalf("retired epoch: status %d: %s", rec.Code, rec.Body.String())
	}
	if got, want := rec.Header().Get(epochHeader), fmt.Sprint(p.Epoch()); got != want {
		t.Fatalf("stale %s header = %q, want %q", epochHeader, got, want)
	}
}

// TestResolveStatusMapping pins the typed-error contract of the serving
// codec: syntax 400, oversize 413, semantic violations 422, shed 429.
func TestResolveStatusMapping(t *testing.T) {
	s, _ := resolveServer(t, 2, Options{MaxBatchClients: 4, MaxBodyBytes: 256})
	cases := []struct {
		name string
		path string
		body string
		want int
	}{
		{"malformed JSON", "/v1/assign-batch", `{`, http.StatusBadRequest},
		{"not an object", "/v1/assign-batch", `[]`, http.StatusBadRequest},
		{"unknown key", "/v1/assign-batch", `{"clients":[[1,2]]}`, http.StatusBadRequest},
		{"unary key on batch", "/v1/assign-batch", `{"coord":[1,2]}`, http.StatusBadRequest},
		{"batch key on unary", "/v1/assign-one", `{"coords":[[1,2]]}`, http.StatusBadRequest},
		{"empty object", "/v1/assign-batch", `{}`, http.StatusBadRequest},
		{"empty coords", "/v1/assign-batch", `{"coords":[]}`, http.StatusBadRequest},
		{"trailing data", "/v1/assign-batch", `{"coords":[[1,2]]}x`, http.StatusBadRequest},
		{"duplicate coords", "/v1/assign-batch", `{"coords":[[1,2]],"coords":[[3,4]]}`, http.StatusBadRequest},
		{"NaN coordinate", "/v1/assign-batch", `{"coords":[[NaN,1]]}`, http.StatusBadRequest},
		{"negative epoch", "/v1/assign-batch", `{"coords":[[1,2]],"epoch":-1}`, http.StatusBadRequest},
		{"arity 1", "/v1/assign-batch", `{"coords":[[1]]}`, http.StatusUnprocessableEntity},
		{"arity 5", "/v1/assign-batch", `{"coords":[[1,2,3,4,5]]}`, http.StatusUnprocessableEntity},
		{"negative height", "/v1/assign-batch", `{"coords":[[1,2,3,-1]]}`, http.StatusUnprocessableEntity},
		{"float overflow", "/v1/assign-batch", `{"coords":[[1e999,0]]}`, http.StatusUnprocessableEntity},
		{"batch too large", "/v1/assign-batch", `{"coords":[[1,2],[1,2],[1,2],[1,2],[1,2]]}`, http.StatusRequestEntityTooLarge},
		{"body too large", "/v1/assign-batch", `{"coords":[[` + strings.Repeat("1", 300) + `,2]]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rec := postRaw(t, s, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, rec.Body.String())
		}
	}
	// Method mapping rides the same handler.
	req := httptest.NewRequest(http.MethodGet, "/v1/assign-batch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", rec.Code)
	}
}

// TestResolveShedsWholeBatch pins the 429 leg: a shedding admission
// controller rejects the batch before any computation, with Retry-After
// and no partial body.
func TestResolveShedsWholeBatch(t *testing.T) {
	sick := live.HealthSnapshot{
		Servers: 4, DeadServers: 4, Clients: 10,
		Failovers: 100, ReconnectAttempts: 10000,
		Deliveries: 100, LagSpreadSum: 100 * 1000,
	}
	quiet := live.HealthSnapshot{Servers: 4, Clients: 10}
	s, _ := resolveServer(t, 2, Options{Admission: &AdmissionConfig{
		Health: &stubHealth{snaps: []live.HealthSnapshot{quiet, sick}},
		Window: time.Nanosecond,
	}})
	// Two requests: the first scores the quiet base, the second diffs
	// the churn storm against it and sheds.
	postRaw(t, s, "/v1/assign-batch", `{"coords":[[1,2]]}`)
	rec := postRaw(t, s, "/v1/assign-batch", `{"coords":[[1,2],[3,4]]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if bytes.Contains(rec.Body.Bytes(), []byte("servers")) {
		t.Fatalf("shed response leaked a partial assignment: %s", rec.Body.String())
	}
}

// TestAssignBatchDifferential pins bit-identity between one batch call
// and N sequential unary calls against the same pinned epoch, across
// GOMAXPROCS and shard counts.
func TestAssignBatchDifferential(t *testing.T) {
	cs, err := latency.GenerateCoords(latency.DefaultConfig(64), 7)
	if err != nil {
		t.Fatal(err)
	}
	queries := cs[44:]
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range []int{1, 4} {
			s, p := resolveServer(t, shards, Options{})
			epoch := p.Epoch()
			var batchReq AssignBatchRequest
			batchReq.Epoch = &epoch
			for _, q := range queries {
				batchReq.Coords = append(batchReq.Coords, []float64{q.X, q.Y, q.Z, q.H})
			}
			rec := postJSON(t, s, "/v1/assign-batch", batchReq)
			if rec.Code != http.StatusOK {
				t.Fatalf("procs %d shards %d: batch status %d: %s", procs, shards, rec.Code, rec.Body.String())
			}
			batch := decodeBody[AssignBatchResponse](t, rec)
			for i, q := range queries {
				rec := postJSON(t, s, "/v1/assign-one", AssignOneRequest{
					Coord: []float64{q.X, q.Y, q.Z, q.H}, Epoch: &epoch,
				})
				if rec.Code != http.StatusOK {
					t.Fatalf("procs %d shards %d: unary %d status %d: %s", procs, shards, i, rec.Code, rec.Body.String())
				}
				one := decodeBody[AssignOneResponse](t, rec)
				if one.Server != batch.Servers[i] || one.LatencyMs != batch.LatencyMs[i] ||
					one.Epoch != batch.Epoch || one.D != batch.D || one.CertifiedD != batch.CertifiedD {
					t.Fatalf("procs %d shards %d: query %d: unary %+v != batch entry (%d, %v) under epoch %d d %v",
						procs, shards, i, one, batch.Servers[i], batch.LatencyMs[i], batch.Epoch, batch.D)
				}
			}
		}
	}
}

// TestResolveEndpointsAbsentWithoutPlane pins that the serving routes
// only exist when a shard plane is configured.
func TestResolveEndpointsAbsentWithoutPlane(t *testing.T) {
	s := testServer()
	for _, path := range []string{"/v1/assign-one", "/v1/assign-batch"} {
		rec := postRaw(t, s, path, `{"coords":[[1,2]]}`)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s without a plane: status %d, want 404", path, rec.Code)
		}
	}
}
