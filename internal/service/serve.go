package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Serve runs the service on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately (new connections are
// refused) while in-flight requests get up to Options.DrainTimeout to
// complete via http.Server.Shutdown. Callers wire SIGTERM/SIGINT to ctx
// with signal.NotifyContext so orchestrated stops drain instead of
// dropping work. Returns nil on a clean drain; a drain-deadline
// overrun surfaces as an error after the remaining connections are
// force-closed.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		// Serve never returns nil; ErrServerClosed cannot happen before
		// Shutdown is called, so this is a real listener failure.
		return fmt.Errorf("service: serve: %w", err)
	case <-ctx.Done():
	}
	s.log.Info("service: draining", "timeout", s.opts.DrainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		_ = srv.Close()
		return fmt.Errorf("service: drain: %w", err)
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("service: serve: %w", err)
	}
	s.log.Info("service: drained")
	return nil
}
