package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"diacap/internal/core"
	"diacap/internal/latency"
)

func testServer() *Server { return New(Options{MaxNodes: 256}) }

func ptr[T any](v T) *T { return &v }

func postJSON(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decodeBody[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return v
}

func smallMatrix(t *testing.T) [][]float64 {
	t.Helper()
	return [][]float64(latency.ScaledLike(20, 1))
}

func TestHealthz(t *testing.T) {
	s := testServer()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestAlgorithmsList(t *testing.T) {
	s := testServer()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/algorithms", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Algorithms []AlgorithmInfo `json:"algorithms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Algorithms) != 4 {
		t.Fatalf("algorithms = %v", out.Algorithms)
	}
	// POST is not allowed.
	rec2 := postJSON(t, s, "/v1/algorithms", map[string]any{})
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec2.Code)
	}
}

func TestAssignHappyPath(t *testing.T) {
	s := testServer()
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:            smallMatrix(t),
		Servers:           []int{0, 1, 2},
		Algorithm:         "Greedy",
		IncludeOffsets:    true,
		IncludeLowerBound: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignResponse](t, rec)
	if resp.Algorithm != "Greedy" {
		t.Fatalf("algorithm = %q", resp.Algorithm)
	}
	if len(resp.Assignment) != 20 { // default: a client at every node
		t.Fatalf("assignment length = %d", len(resp.Assignment))
	}
	if resp.D <= 0 || resp.LowerBound <= 0 || resp.Normalized < 1 {
		t.Fatalf("metrics: %+v", resp)
	}
	if len(resp.ServerAhead) != 3 {
		t.Fatalf("offsets = %v", resp.ServerAhead)
	}
	if len(resp.Loads) != 3 {
		t.Fatalf("loads = %v", resp.Loads)
	}
	total := 0
	for _, l := range resp.Loads {
		total += l
	}
	if total != 20 {
		t.Fatalf("loads sum to %d", total)
	}

	// The response must reproduce what the library computes directly.
	m := latency.Matrix(smallMatrix(t))
	clients := make([]int, 20)
	for i := range clients {
		clients[i] = i
	}
	in, err := core.NewInstanceTrusted(m, []int{0, 1, 2}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.MaxInteractionPath(core.Assignment(resp.Assignment)); got != resp.D {
		t.Fatalf("service D %v != library D %v", resp.D, got)
	}
}

func TestAssignDefaults(t *testing.T) {
	s := testServer()
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:  smallMatrix(t),
		Servers: []int{3, 7},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignResponse](t, rec)
	if resp.Algorithm != "Distributed-Greedy" {
		t.Fatalf("default algorithm = %q", resp.Algorithm)
	}
	if resp.LowerBound != 0 || resp.ServerAhead != nil {
		t.Fatal("optional fields should be omitted unless requested")
	}
}

func TestAssignExplicitClients(t *testing.T) {
	s := testServer()
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:  smallMatrix(t),
		Servers: []int{0, 1},
		Clients: []int{5, 6, 7},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignResponse](t, rec)
	if len(resp.Assignment) != 3 {
		t.Fatalf("assignment length = %d", len(resp.Assignment))
	}
}

func TestAssignCapacitated(t *testing.T) {
	s := testServer()
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:     smallMatrix(t),
		Servers:    []int{0, 1, 2, 3},
		Algorithm:  "Nearest-Server",
		Capacities: []int{5, 5, 5, 5},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignResponse](t, rec)
	for k, l := range resp.Loads {
		if l > 5 {
			t.Fatalf("server %d overloaded: %d", k, l)
		}
	}
	// Infeasible capacities → 422.
	rec = postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:     smallMatrix(t),
		Servers:    []int{0, 1},
		Capacities: []int{5, 5},
	})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible status = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestAssignErrors(t *testing.T) {
	s := testServer()
	asym := smallMatrix(t)
	asym[0][1] += 5
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"empty body", map[string]any{}, http.StatusBadRequest},
		{"no servers", AssignRequest{Matrix: smallMatrix(t)}, http.StatusBadRequest},
		{"bad matrix", AssignRequest{Matrix: asym, Servers: []int{0}}, http.StatusBadRequest},
		{"unknown algorithm", AssignRequest{Matrix: smallMatrix(t), Servers: []int{0}, Algorithm: "Magic"}, http.StatusBadRequest},
		{"server out of range", AssignRequest{Matrix: smallMatrix(t), Servers: []int{99}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"matrix": smallMatrix(t), "servers": []int{0}, "wat": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, s, "/v1/assign", tc.req)
			if rec.Code != tc.want {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.want, rec.Body.String())
			}
			var e map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
				t.Fatalf("error body = %s", rec.Body.String())
			}
		})
	}
}

func TestAssignRejectsOversizedMatrix(t *testing.T) {
	s := New(Options{MaxNodes: 8})
	rec := postJSON(t, s, "/v1/assign", AssignRequest{Matrix: smallMatrix(t), Servers: []int{0}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "limit") {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestAssignRejectsGet(t *testing.T) {
	s := testServer()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/assign", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestAssignBodyLimit(t *testing.T) {
	s := New(Options{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"matrix": [[%s]]}`, strings.Repeat("0,", 1000)+"0")
	req := httptest.NewRequest(http.MethodPost, "/v1/assign", strings.NewReader(big))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestPlacementHappyPath(t *testing.T) {
	s := testServer()
	for _, strategy := range []string{"", "random", "k-center-a", "k-center-b"} {
		rec := postJSON(t, s, "/v1/placement", PlacementRequest{
			Matrix:   smallMatrix(t),
			K:        4,
			Strategy: strategy,
			Seed:     ptr(int64(7)),
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("strategy %q: status = %d: %s", strategy, rec.Code, rec.Body.String())
		}
		resp := decodeBody[PlacementResponse](t, rec)
		if len(resp.Servers) == 0 || len(resp.Servers) > 4 {
			t.Fatalf("strategy %q: servers = %v", strategy, resp.Servers)
		}
		if resp.CoverRadius <= 0 {
			t.Fatalf("strategy %q: radius = %v", strategy, resp.CoverRadius)
		}
	}
}

func TestPlacementErrors(t *testing.T) {
	s := testServer()
	rec := postJSON(t, s, "/v1/placement", PlacementRequest{Matrix: smallMatrix(t), K: 0})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("k=0 status = %d", rec.Code)
	}
	rec = postJSON(t, s, "/v1/placement", PlacementRequest{K: 2})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("no matrix status = %d", rec.Code)
	}
	rec = postJSON(t, s, "/v1/placement", PlacementRequest{Matrix: smallMatrix(t), K: 2, Strategy: "bogus"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad strategy status = %d", rec.Code)
	}
}

func TestEndToEndOverRealHTTP(t *testing.T) {
	// The service behind a real TCP listener (httptest.Server).
	ts := httptest.NewServer(testServer())
	defer ts.Close()

	body, err := json.Marshal(AssignRequest{
		Matrix:  smallMatrix(t),
		Servers: []int{0, 4, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/assign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out AssignResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.D <= 0 || len(out.Assignment) != 20 {
		t.Fatalf("response = %+v", out)
	}
}

func testClientCoords(t *testing.T, n int) []latency.Coord {
	t.Helper()
	cs, err := latency.GenerateCoords(latency.DefaultConfig(n), 3)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestAssignCoordsHappyPath(t *testing.T) {
	s := testServer()
	clients := testClientCoords(t, 400)
	rec := postJSON(t, s, "/v1/assign-coords", AssignCoordsRequest{
		Clients:      clients,
		PlaceServers: 5,
		MaxCells:     64,
		Seed:         ptr(int64(2)),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignCoordsResponse](t, rec)
	if len(resp.Assignment) != len(clients) || len(resp.Servers) != 5 {
		t.Fatalf("assignment %d clients, %d servers", len(resp.Assignment), len(resp.Servers))
	}
	if resp.ExactD > resp.CertifiedD+1e-9 || resp.AuditedD > resp.ExactD+1e-9 {
		t.Fatalf("certificate violated: audited %v, exact %v, certified %v",
			resp.AuditedD, resp.ExactD, resp.CertifiedD)
	}
	if resp.Cells == 0 || resp.Cells > 64 {
		t.Fatalf("cells = %d", resp.Cells)
	}
	sum := 0
	for _, l := range resp.Loads {
		sum += l
	}
	if sum != len(clients) {
		t.Fatalf("loads sum %d, want %d", sum, len(clients))
	}
}

// TestAssignCoordsBypassesMaxNodes sends more clients than the matrix
// endpoints accept: the coordinate path has no MaxNodes limit.
func TestAssignCoordsBypassesMaxNodes(t *testing.T) {
	s := testServer() // MaxNodes: 256
	clients := testClientCoords(t, 2000)
	rec := postJSON(t, s, "/v1/assign-coords", AssignCoordsRequest{
		Clients:      clients,
		PlaceServers: 8,
		MaxCells:     128,
		Seed:         ptr(int64(4)),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignCoordsResponse](t, rec)
	if len(resp.Assignment) != 2000 {
		t.Fatalf("assignment has %d clients", len(resp.Assignment))
	}
}

func TestAssignCoordsSeedReproducible(t *testing.T) {
	s := testServer()
	clients := testClientCoords(t, 300)
	req := AssignCoordsRequest{
		Clients:        clients,
		PlaceServers:   4,
		MaxCells:       50,
		RandomRestarts: 4,
		Seed:           ptr(int64(11)),
	}
	r1 := decodeBody[AssignCoordsResponse](t, postJSON(t, s, "/v1/assign-coords", req))
	r2 := decodeBody[AssignCoordsResponse](t, postJSON(t, s, "/v1/assign-coords", req))
	if fmt.Sprint(r1.Assignment) != fmt.Sprint(r2.Assignment) || r1.Algorithm != r2.Algorithm {
		t.Fatal("same seed produced different assignments")
	}
}

func TestAssignCoordsValidation(t *testing.T) {
	s := testServer()
	clients := testClientCoords(t, 50)
	servers := clients[:3]
	cases := []struct {
		name string
		req  AssignCoordsRequest
	}{
		{"no clients", AssignCoordsRequest{Servers: servers}},
		{"no servers", AssignCoordsRequest{Clients: clients}},
		{"both servers and placeServers", AssignCoordsRequest{Clients: clients, Servers: servers, PlaceServers: 2}},
		{"maxCells over limit", AssignCoordsRequest{Clients: clients, Servers: servers, MaxCells: MaxCoordCells + 1}},
		{"misaligned capacities", AssignCoordsRequest{Clients: clients, Servers: servers, Capacities: []int{1}}},
		{"unknown algorithm", AssignCoordsRequest{Clients: clients, Servers: servers, Algorithms: []string{"nope"}}},
	}
	for _, tc := range cases {
		rec := postJSON(t, s, "/v1/assign-coords", tc.req)
		if rec.Code < 400 || rec.Code >= 500 {
			t.Errorf("%s: status = %d, want 4xx: %s", tc.name, rec.Code, rec.Body.String())
		}
	}
}

// TestAssignSeedPlumbed pins the satellite behavior: a seeded /v1/assign
// request running a randomized algorithm is reproducible, and different
// seeds are allowed to (and here do) differ.
func TestAssignSeedPlumbed(t *testing.T) {
	s := testServer()
	m := smallMatrix(t)
	req := func(seed int64) AssignRequest {
		return AssignRequest{Matrix: m, Servers: []int{0, 1, 2}, Algorithm: "Random", Seed: ptr(seed)}
	}
	r1 := decodeBody[AssignResponse](t, postJSON(t, s, "/v1/assign", req(5)))
	r2 := decodeBody[AssignResponse](t, postJSON(t, s, "/v1/assign", req(5)))
	if fmt.Sprint(r1.Assignment) != fmt.Sprint(r2.Assignment) {
		t.Fatal("same seed produced different Random assignments")
	}
	diff := false
	for seed := int64(6); seed < 12 && !diff; seed++ {
		r3 := decodeBody[AssignResponse](t, postJSON(t, s, "/v1/assign", req(seed)))
		diff = fmt.Sprint(r3.Assignment) != fmt.Sprint(r1.Assignment)
	}
	if !diff {
		t.Fatal("every seed produced the identical Random assignment")
	}
}
