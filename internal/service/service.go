// Package service exposes the client assignment system as an HTTP/JSON
// API — the operational form in which a game or DVE deployment would
// consume this library: a matchmaker or connection broker POSTs the
// current latency picture and receives the assignment, the minimum
// feasible lag δ = D, and the simulation-time offsets to configure the
// servers with.
//
// Endpoints:
//
//	GET  /healthz          liveness probe (build info, live-cluster state)
//	GET  /v1/algorithms    list assignment algorithms
//	POST /v1/assign        compute an assignment (see AssignRequest)
//	POST /v1/assign-coords scaled assignment from network coordinates,
//	                       no matrix and no MaxNodes limit (see
//	                       AssignCoordsRequest)
//	POST /v1/placement     choose server nodes (see PlacementRequest)
//	POST /v1/assign-one    resolve one prospective client to its nearest
//	                       admissible server from the published shard
//	                       snapshot (Options.Shard; see AssignOneRequest)
//	POST /v1/assign-batch  resolve a whole batch of prospective clients
//	                       under one snapshot and one admission decision
//	                       (Options.Shard; see AssignBatchRequest)
//	POST /v1/shard/assign  mutate the sharded control plane
//	                       (Options.Shard; see ShardAssignRequest)
//	GET  /v1/shard/snapshot
//	                       published shard snapshot, optionally
//	                       conditional on ?epoch=N (409 + X-Diacap-Epoch
//	                       when the epoch was retired)
//	GET  /metrics          Prometheus text exposition (Options.Metrics)
//	GET  /debug/vars       JSON metric snapshot (Options.Metrics)
//	GET  /debug/pprof/     net/http/pprof (Options.EnablePprof)
//
// All errors are JSON: {"error": "..."} with a 4xx/5xx status.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"time"

	"diacap/internal/assign"
	"diacap/internal/core"
	"diacap/internal/latency"
	"diacap/internal/obs"
	"diacap/internal/placement"
	"diacap/internal/scale"
	"diacap/internal/shard"
)

// Options bounds the service.
type Options struct {
	// MaxNodes rejects matrices larger than this (default 2048): the
	// lower-bound computation is O(n²·|S|).
	MaxNodes int
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's handling time; a request
	// exceeding it receives 503 JSON. Zero disables the limit.
	RequestTimeout time.Duration
	// Metrics, if non-nil, receives request/assignment metrics and
	// enables GET /metrics (Prometheus text) and GET /debug/vars (JSON).
	Metrics *obs.Registry
	// Logger receives structured request and error logs (nil = discard).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (opt-in:
	// profiles reveal internals and cost CPU to produce).
	EnablePprof bool
	// Live, if non-nil, is the live server cluster this service fronts;
	// /healthz then reports its size and dead-server count.
	Live LiveStatus
	// Admission, if non-nil with a Health source, gates the assignment
	// endpoints on live-cluster health: degraded clusters get the cached
	// last-good response (X-Diacap-Stale header), sick clusters get 429 +
	// Retry-After instead of a doomed computation (see AdmissionConfig).
	Admission *AdmissionConfig
	// DrainTimeout bounds the in-flight drain of Serve on shutdown
	// (default 10 s).
	DrainTimeout time.Duration
	// Shard, if non-nil, is the sharded assignment control plane this
	// service fronts; it mounts POST /v1/shard/assign,
	// GET /v1/shard/snapshot, and the zero-alloc serving endpoints
	// POST /v1/assign-one and POST /v1/assign-batch.
	Shard *shard.Plane
	// MaxBatchClients bounds one /v1/assign-batch request (default
	// 65536); larger batches get 413. The per-request scratch is
	// O(MaxBatchClients × servers) float64s at worst, so this bound is
	// also the pooled-memory bound.
	MaxBatchClients int
	// Tracer, if non-nil, samples requests into spans: traced responses
	// carry X-Diacap-Trace, span trees are served at /debug/trace, and
	// request-latency histograms gain trace exemplars. Incoming W3C
	// traceparent headers are honored (remote trace and sampling
	// decision adopted).
	Tracer *obs.Tracer
	// Flight is the always-on flight recorder behind /debug/flight. Nil
	// gets a private recorder (the recorder is cheap: fixed rings,
	// lock-free writes), so the journals are always recording; pass one
	// explicitly to share journals with the shard plane and live layer
	// or to set a dump writer.
	Flight *obs.Recorder

	// testHookAssign, when non-nil, runs inside every admitted /v1/assign
	// request before the computation starts. In-package tests use it to
	// hold a request in flight across a shutdown.
	testHookAssign func()
}

func (o *Options) fill() {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 2048
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxBatchClients <= 0 {
		o.MaxBatchClients = 65536
	}
	if o.Logger == nil {
		o.Logger = obs.Discard()
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Flight == nil {
		o.Flight = obs.NewRecorder(0)
	}
}

// Server is the HTTP handler.
type Server struct {
	opts      Options
	log       *slog.Logger
	algoTrace obs.AlgoTrace
	mux       *http.ServeMux
	handler   http.Handler
	admission *admission
	// Flight journals, resolved once (the recorder always exists after
	// fill, so these are never nil).
	jRequests  *obs.Journal
	jAdmission *obs.Journal
	// Serving-path counters, resolved once at New so the hot handlers
	// never perform a labeled metric lookup (nil without Metrics).
	mResolveOne   *obs.Counter
	mResolveBatch *obs.Counter
}

// New builds the service.
func New(opts Options) *Server {
	opts.fill()
	s := &Server{opts: opts, log: opts.Logger, mux: http.NewServeMux()}
	s.jRequests = opts.Flight.Journal(JournalRequests, 0)
	s.jAdmission = opts.Flight.Journal(JournalAdmission, 0)
	if opts.Admission != nil && opts.Admission.Health != nil {
		s.admission = newAdmission(*opts.Admission)
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("/v1/assign", s.handleAssign)
	s.mux.HandleFunc("/v1/assign-coords", s.handleAssignCoords)
	s.mux.HandleFunc("/v1/placement", s.handlePlacement)
	if opts.Shard != nil {
		s.mux.HandleFunc("/v1/shard/assign", s.handleShardAssign)
		s.mux.HandleFunc("/v1/shard/snapshot", s.handleShardSnapshot)
		s.mux.HandleFunc("/v1/assign-one", s.handleAssignOne)
		s.mux.HandleFunc("/v1/assign-batch", s.handleAssignBatch)
		if reg := opts.Metrics; reg != nil {
			s.mResolveOne = reg.Counter(nResolveClients, hResolveClients,
				obs.L("endpoint", "/v1/assign-one"))
			s.mResolveBatch = reg.Counter(nResolveClients, hResolveClients,
				obs.L("endpoint", "/v1/assign-batch"))
		}
	}
	s.mountDebug()
	var h http.Handler = s.mux
	if opts.RequestTimeout > 0 {
		h = timeoutJSON(h, opts.RequestTimeout)
	}
	h = recoverJSON(h)
	if opts.Metrics != nil {
		s.algoTrace = obs.MetricsTrace(opts.Metrics)
		h = s.instrument(h)
	}
	// Outermost: the root span must exist before instrument reads it for
	// exemplars, and the request journal must see even panicking or
	// timed-out requests with their final status.
	h = s.observe(h)
	s.handler = h
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// recoverJSON turns a handler panic into a 500 JSON error instead of
// killing the connection with a stack trace. http.ErrAbortHandler keeps
// its stdlib meaning and propagates.
func recoverJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			// Best effort: if the handler already wrote a header this
			// degrades to appending, which the client's decoder rejects —
			// still better than a dropped connection.
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "internal server error"})
		}()
		next.ServeHTTP(w, r)
	})
}

// timeoutJSON bounds each request's handling time, answering 503 JSON on
// expiry. http.TimeoutHandler writes its timeout body to the outer
// ResponseWriter, so the Content-Type set here survives; on the fast
// path every endpoint writes JSON anyway. A handler panic is re-raised
// by TimeoutHandler in this goroutine, where recoverJSON catches it.
func timeoutJSON(next http.Handler, d time.Duration) http.Handler {
	inner := http.TimeoutHandler(next, d, `{"error":"request timed out"}`+"\n")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		inner.ServeHTTP(w, r)
	})
}

// httpError is an error with a status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func unprocessable(format string, args ...any) *httpError {
	return &httpError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errStatus maps an error to its HTTP status (500 unless it carries one).
func errStatus(err error) int {
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return http.StatusInternalServerError
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	if r.Method != http.MethodPost {
		return &httpError{status: http.StatusMethodNotAllowed, msg: "POST required"}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("invalid JSON: %v", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":    "ok",
		"version":   obs.BuildVersion(),
		"goVersion": runtime.Version(),
	}
	if s.opts.Live != nil {
		dead := s.opts.Live.DeadServers()
		if len(dead) > 0 {
			resp["status"] = "degraded"
		}
		resp["live"] = map[string]any{
			"servers":     s.opts.Live.NumServers(),
			"deadServers": len(dead),
			"dead":        dead,
		}
	}
	if p := s.opts.Shard; p != nil {
		snap := p.Current()
		resp["shard"] = map[string]any{
			"epoch":      snap.Epoch,
			"active":     snap.Active,
			"d":          snap.D,
			"certifiedD": snap.CertifiedD,
			"shards":     p.Health(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// AlgorithmInfo describes one algorithm in the listing.
type AlgorithmInfo struct {
	Name        string `json:"name"`
	Capacitated bool   `json:"capacitated"`
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, &httpError{status: http.StatusMethodNotAllowed, msg: "GET required"})
		return
	}
	out := make([]AlgorithmInfo, 0, 4)
	for _, alg := range assign.All() {
		out = append(out, AlgorithmInfo{Name: alg.Name(), Capacitated: true})
	}
	writeJSON(w, http.StatusOK, map[string]any{"algorithms": out})
}

// AssignRequest asks for a client assignment.
type AssignRequest struct {
	// Matrix is the complete pairwise latency matrix in milliseconds.
	Matrix [][]float64 `json:"matrix"`
	// Servers are node indices hosting servers.
	Servers []int `json:"servers"`
	// Clients are node indices hosting clients; empty means every node.
	Clients []int `json:"clients,omitempty"`
	// Algorithm names the algorithm (default "Distributed-Greedy").
	Algorithm string `json:"algorithm,omitempty"`
	// Capacities optionally limits clients per server (aligned with
	// Servers).
	Capacities []int `json:"capacities,omitempty"`
	// IncludeOffsets adds the Section II-C simulation-time offsets to the
	// response.
	IncludeOffsets bool `json:"includeOffsets,omitempty"`
	// IncludeLowerBound adds the theoretical lower bound and normalized
	// interactivity (cost: O(|C|²·|S|)).
	IncludeLowerBound bool `json:"includeLowerBound,omitempty"`
	// Seed drives randomized algorithms (e.g. "Random", "Anneal") for
	// reproducible responses; omitted means a time-based seed.
	Seed *int64 `json:"seed,omitempty"`
}

// AssignResponse is the result.
type AssignResponse struct {
	Algorithm string `json:"algorithm"`
	// Assignment[i] is the index into Servers for Clients[i].
	Assignment []int `json:"assignment"`
	// D is the maximum interaction-path length = minimum feasible δ (ms).
	D float64 `json:"d"`
	// LowerBound and Normalized are present when requested.
	LowerBound float64 `json:"lowerBound,omitempty"`
	Normalized float64 `json:"normalized,omitempty"`
	// Loads[k] is the number of clients on Servers[k].
	Loads []int `json:"loads"`
	// ServerAhead are the Δ(s, c) offsets (ms), present when requested.
	ServerAhead []float64 `json:"serverAhead,omitempty"`
	// ElapsedMs is the computation time.
	ElapsedMs float64 `json:"elapsedMs"`
}

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AssignRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if s.admit(w, r, "/v1/assign") {
		return
	}
	if s.opts.testHookAssign != nil {
		s.opts.testHookAssign()
	}
	_, csp := obs.Child(r.Context(), "service.compute")
	resp, err := s.doAssign(&req)
	if resp != nil {
		csp.SetAttr(obs.Str("algorithm", resp.Algorithm), obs.F64("d", resp.D))
	}
	csp.End()
	if err != nil {
		s.fail(w, r, err,
			"nodes", len(req.Matrix),
			"algorithm", req.Algorithm,
			"durationMs", durationMs(time.Since(start)))
		return
	}
	if s.admission != nil {
		s.admission.storeStale("/v1/assign", resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) doAssign(req *AssignRequest) (*AssignResponse, error) {
	if len(req.Matrix) == 0 {
		return nil, badRequest("matrix is required")
	}
	if len(req.Matrix) > s.opts.MaxNodes {
		return nil, badRequest("matrix has %d nodes, limit %d", len(req.Matrix), s.opts.MaxNodes)
	}
	m := latency.Matrix(req.Matrix)
	if err := m.Validate(); err != nil {
		return nil, badRequest("invalid matrix: %v", err)
	}
	clients := req.Clients
	if len(clients) == 0 {
		clients = make([]int, m.Len())
		for i := range clients {
			clients[i] = i
		}
	}
	in, err := core.NewInstanceTrusted(m, req.Servers, clients)
	if err != nil {
		return nil, badRequest("invalid instance: %v", err)
	}
	name := req.Algorithm
	if name == "" {
		name = "Distributed-Greedy"
	}
	alg, err := assign.ByNameSeeded(name, seedOrNow(req.Seed))
	if err != nil {
		return nil, badRequest("unknown algorithm %q", name)
	}
	if s.algoTrace != nil {
		// Copy semantics: WithTrace hooks the per-request copy only.
		if traced, ok := assign.WithTrace(alg, s.algoTrace); ok {
			alg = traced
		}
	}
	var caps core.Capacities
	if req.Capacities != nil {
		caps = core.Capacities(req.Capacities)
		if err := in.ValidateCapacities(caps); err != nil {
			return nil, unprocessable("capacities: %v", err)
		}
	}

	start := time.Now()
	a, err := alg.Assign(in, caps)
	if err != nil {
		return nil, unprocessable("assignment failed: %v", err)
	}
	resp := &AssignResponse{
		Algorithm:  alg.Name(),
		Assignment: a,
		D:          in.MaxInteractionPath(a),
		Loads:      in.Loads(a),
	}
	if req.IncludeLowerBound {
		resp.LowerBound = in.LowerBound()
		if resp.LowerBound > 0 {
			resp.Normalized = resp.D / resp.LowerBound
		}
	}
	if req.IncludeOffsets {
		off, err := in.ComputeOffsets(a)
		if err != nil {
			return nil, fmt.Errorf("computing offsets: %w", err)
		}
		resp.ServerAhead = off.ServerAhead
	}
	elapsed := time.Since(start)
	resp.ElapsedMs = durationMs(elapsed)
	s.recordAssignD(alg.Name(), resp.D, elapsed)
	return resp, nil
}

// seedOrNow dereferences an optional request seed, defaulting to a
// time-based seed so unseeded requests stay randomized.
func seedOrNow(s *int64) int64 {
	if s != nil {
		return *s
	}
	return time.Now().UnixNano()
}

// MaxCoordCells bounds the reduced instance a coords request may ask
// for: the reduced solve is the same O(k²·U) machinery /v1/assign runs
// on matrices, so k gets the equivalent of the MaxNodes guard.
const MaxCoordCells = 4096

// AssignCoordsRequest asks for a scaled assignment from network
// coordinates (the Vivaldi height-vector model): clients and servers
// are points plus access heights, latencies are coordinate-predicted,
// and no pairwise matrix is ever materialized. This endpoint bypasses
// the MaxNodes limit — population size is bounded only by the request
// body limit — because the internal/scale pipeline's cost is O(n), not
// O(n²·|S|).
type AssignCoordsRequest struct {
	// Clients are the client coordinates.
	Clients []latency.Coord `json:"clients"`
	// Servers are the server coordinates. Empty with PlaceServers > 0
	// derives that many servers from the client population by greedy
	// K-center.
	Servers []latency.Coord `json:"servers,omitempty"`
	// PlaceServers is the number of servers to derive when Servers is
	// empty.
	PlaceServers int `json:"placeServers,omitempty"`
	// Capacities optionally limits clients per server (aligned with the
	// effective server list).
	Capacities []int `json:"capacities,omitempty"`
	// MaxCells bounds the reduced instance (0 = scale default; limit
	// MaxCoordCells).
	MaxCells int `json:"maxCells,omitempty"`
	// Algorithms names the reduced-instance solvers (default: the
	// weighted Nearest-Server, Longest-First-Batch, Greedy).
	Algorithms []string `json:"algorithms,omitempty"`
	// RandomRestarts adds seeded weighted-random candidates.
	RandomRestarts int `json:"randomRestarts,omitempty"`
	// Seed drives restarts, audit sampling, and server placement;
	// omitted means a time-based seed.
	Seed *int64 `json:"seed,omitempty"`
	// AuditPairs sizes the random pair subsample measured against the
	// expanded assignment (0 = default; negative disables).
	AuditPairs int `json:"auditPairs,omitempty"`
}

// AssignCoordsResponse is the scaled result with its certificate.
type AssignCoordsResponse struct {
	// Assignment[i] is the server index for client i.
	Assignment []int `json:"assignment"`
	// Servers echoes the effective server coordinates (useful with
	// PlaceServers).
	Servers   []latency.Coord `json:"servers"`
	Algorithm string          `json:"algorithm"`
	// Cells is the reduced instance size k; MaxRho the largest cell
	// radius (ms).
	Cells  int     `json:"cells"`
	MaxRho float64 `json:"maxRho"`
	// DCells ≤ CertifiedD bound the quality: CertifiedD is a certified
	// upper bound on the client-level D, ExactD the exact value under
	// the coordinate metric, AuditedD the measured maximum over the
	// audited subsample.
	DCells     float64 `json:"dCells"`
	CertifiedD float64 `json:"certifiedD"`
	ExactD     float64 `json:"exactD"`
	AuditedD   float64 `json:"auditedD"`
	AuditPairs int     `json:"auditPairs"`
	Loads      []int   `json:"loads"`
	ElapsedMs  float64 `json:"elapsedMs"`
}

func (s *Server) handleAssignCoords(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AssignCoordsRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if s.admit(w, r, "/v1/assign-coords") {
		return
	}
	resp, err := s.doAssignCoords(&req)
	if err != nil {
		s.fail(w, r, err,
			"clients", len(req.Clients),
			"servers", len(req.Servers),
			"durationMs", durationMs(time.Since(start)))
		return
	}
	if s.admission != nil {
		s.admission.storeStale("/v1/assign-coords", resp)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) doAssignCoords(req *AssignCoordsRequest) (*AssignCoordsResponse, error) {
	if len(req.Clients) == 0 {
		return nil, badRequest("clients are required")
	}
	if req.MaxCells < 0 || req.MaxCells > MaxCoordCells {
		return nil, badRequest("maxCells %d out of range [0, %d]", req.MaxCells, MaxCoordCells)
	}
	seed := seedOrNow(req.Seed)
	start := time.Now()
	servers := req.Servers
	if len(servers) == 0 {
		if req.PlaceServers <= 0 {
			return nil, badRequest("servers (or placeServers) are required")
		}
		var err error
		servers, err = scale.PlaceServers(req.Clients, req.PlaceServers, seed)
		if err != nil {
			return nil, badRequest("placing servers: %v", err)
		}
	} else if req.PlaceServers > 0 {
		return nil, badRequest("servers and placeServers are mutually exclusive")
	}
	var caps core.Capacities
	if req.Capacities != nil {
		if len(req.Capacities) != len(servers) {
			return nil, unprocessable("capacities: %d entries for %d servers", len(req.Capacities), len(servers))
		}
		caps = core.Capacities(req.Capacities)
	}
	res, err := scale.AssignCoords(req.Clients, scale.Options{
		Servers:        servers,
		Capacities:     caps,
		MaxCells:       req.MaxCells,
		Algorithms:     req.Algorithms,
		RandomRestarts: req.RandomRestarts,
		Seed:           seed,
		AuditPairs:     req.AuditPairs,
		Metrics:        s.opts.Metrics,
	})
	if err != nil {
		return nil, unprocessable("scaled assignment failed: %v", err)
	}
	return &AssignCoordsResponse{
		Assignment: res.Assignment,
		Servers:    servers,
		Algorithm:  res.Algorithm,
		Cells:      res.Cells,
		MaxRho:     res.MaxRho,
		DCells:     res.DCells,
		CertifiedD: res.CertifiedD,
		ExactD:     res.ExactD,
		AuditedD:   res.AuditedD,
		AuditPairs: res.AuditPairs,
		Loads:      res.Loads,
		ElapsedMs:  float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// PlacementRequest asks for server placement.
type PlacementRequest struct {
	Matrix [][]float64 `json:"matrix"`
	// K is the number of servers to place.
	K int `json:"k"`
	// Strategy is "random", "k-center-a", or "k-center-b" (default).
	Strategy string `json:"strategy,omitempty"`
	// Seed drives random placement reproducibly; omitted means a
	// time-based seed.
	Seed *int64 `json:"seed,omitempty"`
}

// PlacementResponse is the result.
type PlacementResponse struct {
	Servers []int `json:"servers"`
	// CoverRadius is the K-center objective of the placement (ms).
	CoverRadius float64 `json:"coverRadius"`
	ElapsedMs   float64 `json:"elapsedMs"`
}

func (s *Server) handlePlacement(w http.ResponseWriter, r *http.Request) {
	var req PlacementRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, r, err)
		return
	}
	if len(req.Matrix) == 0 {
		s.fail(w, r, badRequest("matrix is required"))
		return
	}
	if len(req.Matrix) > s.opts.MaxNodes {
		s.fail(w, r, badRequest("matrix has %d nodes, limit %d", len(req.Matrix), s.opts.MaxNodes), "nodes", len(req.Matrix))
		return
	}
	m := latency.Matrix(req.Matrix)
	if err := m.Validate(); err != nil {
		s.fail(w, r, badRequest("invalid matrix: %v", err), "nodes", len(req.Matrix))
		return
	}
	strategy := placement.Strategy(req.Strategy)
	if req.Strategy == "" {
		strategy = placement.KCenterB
	}
	start := time.Now()
	servers, err := placement.Place(strategy, m, req.K, rand.New(rand.NewSource(seedOrNow(req.Seed))))
	if err != nil {
		s.fail(w, r, badRequest("placement: %v", err), "nodes", len(req.Matrix), "k", req.K)
		return
	}
	writeJSON(w, http.StatusOK, PlacementResponse{
		Servers:     servers,
		CoverRadius: placement.CoverRadius(m, servers),
		ElapsedMs:   float64(time.Since(start)) / float64(time.Millisecond),
	})
}
