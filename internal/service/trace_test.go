package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diacap/internal/latency"
	"diacap/internal/live"
	"diacap/internal/obs"
	"diacap/internal/shard"
)

// tracedShardServer wires one tracer and one flight recorder through
// both the service and the shard plane, the production topology.
func tracedShardServer(t *testing.T) (*Server, *obs.Tracer, *obs.Recorder) {
	t.Helper()
	cs, err := latency.GenerateCoords(latency.DefaultConfig(44), 21)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1, Seed: 5})
	fl := obs.NewRecorder(0)
	p, err := shard.New(shard.Options{
		Shards: 2, Servers: cs[:4], Clients: cs[4:], Tracer: tr, Flight: fl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(Options{Shard: p, Tracer: tr, Flight: fl}), tr, fl
}

func findSpan(nodes []*obs.SpanNode, name string) *obs.SpanNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if c := findSpan(n.Children, name); c != nil {
			return c
		}
	}
	return nil
}

// TestTracedShardAssignEndToEnd is the acceptance path: a traced
// /v1/shard/assign responds with X-Diacap-Trace, the id resolves at
// /debug/trace to a span tree whose layers (decode, plane op, publish)
// hang off the HTTP root, and the per-layer timings nest inside the
// measured request latency.
func TestTracedShardAssignEndToEnd(t *testing.T) {
	s, _, fl := tracedShardServer(t)

	rec := postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "join", Client: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("join: status %d: %s", rec.Code, rec.Body.String())
	}
	trace := rec.Header().Get(TraceHeader)
	if len(trace) != 32 {
		t.Fatalf("%s = %q, want a 32-hex trace id", TraceHeader, trace)
	}

	drec := httptest.NewRecorder()
	s.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/trace?trace="+trace, nil))
	if drec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d: %s", drec.Code, drec.Body.String())
	}
	doc := decodeBody[obs.TraceDoc](t, drec)
	if doc.Trace != trace {
		t.Fatalf("trace doc id = %q, want %q", doc.Trace, trace)
	}
	if len(doc.Tree) != 1 {
		t.Fatalf("trace has %d roots, want 1", len(doc.Tree))
	}
	root := doc.Tree[0]
	if root.Name != "http /v1/shard/assign" {
		t.Fatalf("root span = %q", root.Name)
	}
	for _, name := range []string{"service.decode", "plane.join", "plane.publish"} {
		if findSpan(doc.Tree, name) == nil {
			t.Fatalf("span %q missing from the tree; spans: %d", name, len(doc.Spans))
		}
	}
	if pub := findSpan(doc.Tree, "plane.publish"); pub == nil || findSpan([]*obs.SpanNode{findSpan(doc.Tree, "plane.join")}, "plane.publish") == nil {
		t.Fatal("plane.publish is not nested under plane.join")
	}

	// Layer attribution: every direct child fits inside the root, and the
	// layers together account for no more than the measured latency
	// (children are sequential here; 1ms slop absorbs clock granularity).
	var sum float64
	for _, c := range root.Children {
		if c.Duration > root.Duration+1 {
			t.Fatalf("child %q (%.3fms) exceeds root (%.3fms)", c.Name, c.Duration, root.Duration)
		}
		sum += c.Duration
	}
	if sum > root.Duration+1 {
		t.Fatalf("children sum to %.3fms, root measured %.3fms", sum, root.Duration)
	}

	// The request landed in the flight recorder's requests journal under
	// the same trace.
	reqs := fl.Journal(JournalRequests, 0).Snapshot()
	found := false
	for _, e := range reqs {
		if e.Kind == "/v1/shard/assign" && e.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Fatalf("requests journal has no event for trace %s: %+v", trace, reqs)
	}

	// /debug/flight serves the same journals over HTTP.
	frec := httptest.NewRecorder()
	s.ServeHTTP(frec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if frec.Code != http.StatusOK {
		t.Fatalf("/debug/flight: status %d", frec.Code)
	}
	dump := decodeBody[obs.FlightDump](t, frec)
	if _, ok := dump.Journals[JournalRequests]; !ok {
		t.Fatalf("/debug/flight dump missing %q journal: %v", JournalRequests, dump.Journals)
	}
}

// TestTraceparentAdoption pins W3C propagation on the HTTP edge: a
// request carrying a sampled traceparent keeps its caller-chosen trace
// id end to end.
func TestTraceparentAdoption(t *testing.T) {
	s, tr, _ := tracedShardServer(t)
	const remote = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req := httptest.NewRequest(http.MethodGet, "/v1/shard/snapshot", nil)
	req.Header.Set(obs.TraceparentHeader, remote)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d", rec.Code)
	}
	if got := rec.Header().Get(TraceHeader); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("%s = %q, want the remote trace id", TraceHeader, got)
	}
	spans := tr.Collect("0123456789abcdef0123456789abcdef")
	if len(spans) == 0 {
		t.Fatal("no spans recorded under the adopted trace")
	}
	root := spans[len(spans)-1]
	if root.Parent != "00f067aa0ba902b7" {
		t.Fatalf("adopted root's parent = %q, want the remote span id", root.Parent)
	}
}

// TestUntracedServerStillServes pins the nil-tracer path: no header, no
// /debug/trace route, everything else identical.
func TestUntracedServerStillServes(t *testing.T) {
	s, _ := shardServer(t)
	rec := postJSON(t, s, "/v1/shard/assign", ShardAssignRequest{Op: "join", Client: 0})
	if rec.Code != http.StatusOK {
		t.Fatalf("join: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(TraceHeader); got != "" {
		t.Fatalf("untraced response carries %s = %q", TraceHeader, got)
	}
	drec := httptest.NewRecorder()
	s.ServeHTTP(drec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if drec.Code != http.StatusNotFound {
		t.Fatalf("/debug/trace without a tracer: status %d, want 404", drec.Code)
	}
}

// TestHealthzShardSection pins the per-shard health surface on /healthz:
// epoch, active count, and one entry per shard.
func TestHealthzShardSection(t *testing.T) {
	s, p := shardServer(t)
	if _, err := p.Join(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: status %d", rec.Code)
	}
	body := decodeBody[map[string]any](t, rec)
	sh, ok := body["shard"].(map[string]any)
	if !ok {
		t.Fatalf("/healthz has no shard section: %v", body)
	}
	if sh["epoch"].(float64) != 2 || sh["active"].(float64) != 1 {
		t.Fatalf("shard section epoch/active: %v", sh)
	}
	shards, ok := sh["shards"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("shard section lists %v, want 2 shards", sh["shards"])
	}
	first, ok := shards[0].(map[string]any)
	if !ok {
		t.Fatalf("per-shard entry: %v", shards[0])
	}
	for _, key := range []string{"shard", "summaryEpoch", "active", "lastRepair"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("per-shard health entry missing %q: %v", key, first)
		}
	}
}

// TestShedDumpCarriesTriggeringTrace is the flight-recorder acceptance
// path: the request that tips admission into shedding gets a 429 whose
// trace id appears in the admission journal and in the automatic
// "admission-shed" dump, the dominant component is journaled and
// counted, and the structured log names it.
func TestShedDumpCarriesTriggeringTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1, Seed: 13})
	fl := obs.NewRecorder(0)
	var dumped bytes.Buffer
	fl.SetDumpWriter(&dumped)
	sick := live.HealthSnapshot{
		Servers: 4, DeadServers: 4, Clients: 10,
		Failovers: 100, ReconnectAttempts: 10000,
		Deliveries: 100, LagSpreadSum: 100 * 1000,
	}
	s := New(Options{
		MaxNodes: 256,
		Metrics:  reg,
		Tracer:   tr,
		Flight:   fl,
		Admission: &AdmissionConfig{
			Health: &stubHealth{snaps: []live.HealthSnapshot{{Servers: 4, Clients: 10}, sick}},
			Window: time.Nanosecond,
		},
	})
	req := AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	}
	if rec := postJSON(t, s, "/v1/assign", req); rec.Code != http.StatusOK {
		t.Fatalf("quiet: status %d: %s", rec.Code, rec.Body.String())
	}
	rec := postJSON(t, s, "/v1/assign", req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("sick: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	trace := rec.Header().Get(TraceHeader)
	if trace == "" {
		t.Fatalf("shed response has no %s header", TraceHeader)
	}

	adm := fl.Journal(JournalAdmission, 0).Snapshot()
	if len(adm) != 1 {
		t.Fatalf("admission journal has %d events, want the shed transition", len(adm))
	}
	ev := adm[0]
	if ev.Kind != AdmissionShed.String() {
		t.Fatalf("admission journal kind = %q, want %q", ev.Kind, AdmissionShed.String())
	}
	if ev.Trace != trace {
		t.Fatalf("shed journal trace = %q, want the triggering request's %q", ev.Trace, trace)
	}
	attrs := map[string]string{}
	for _, a := range ev.Attrs {
		attrs[a.Key] = a.Value
	}
	// Every component saturated; dead servers carry the largest weight.
	if attrs["dominant"] != "dead_servers" {
		t.Fatalf("journaled dominant = %q, want dead_servers (attrs %v)", attrs["dominant"], ev.Attrs)
	}
	if got := reg.Counter(nAdmShedComp, "", obs.L("component", "dead_servers")).Value(); got != 1 {
		t.Fatalf("shed component counter = %d, want 1", got)
	}

	out := dumped.String()
	if !strings.Contains(out, "admission-shed") {
		t.Fatalf("no automatic admission-shed dump was written:\n%s", out)
	}
	if !strings.Contains(out, trace) {
		t.Fatalf("admission-shed dump does not contain the triggering trace %s:\n%s", trace, out)
	}
}

// TestLatencyExemplarLinksTrace pins the metrics→trace cross-link: after
// a traced request, the request-duration histogram holds an exemplar
// carrying that trace id.
func TestLatencyExemplarLinksTrace(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.TracerOptions{SampleRate: 1, Seed: 3})
	s := New(Options{MaxNodes: 256, Metrics: reg, Tracer: tr})
	rec := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix: smallMatrix(t), Servers: []int{0, 1}, Algorithm: "Greedy", Seed: ptr[int64](1),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("assign: status %d: %s", rec.Code, rec.Body.String())
	}
	trace := rec.Header().Get(TraceHeader)
	h := reg.Histogram(nHTTPSeconds, "", obs.SecondsBuckets, obs.L("endpoint", "/v1/assign"))
	found := false
	for _, ex := range h.Exemplars() {
		if ex != nil && ex.Trace == trace {
			found = true
		}
	}
	if !found {
		t.Fatalf("no exemplar carries trace %s", trace)
	}
}
