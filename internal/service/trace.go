package service

// Request tracing and the request-level flight journal. The observe
// middleware is the outermost layer of the chain: it opens (or adopts,
// via W3C traceparent) the root span for the request, exposes the trace
// id to the caller in the X-Diacap-Trace response header before the
// handler runs, and journals every finished request into the flight
// recorder. Lower layers (admission, the shard plane, the evaluator
// hooks) attach child spans and events through the request context, so
// a traced /v1/shard/assign resolves to a span tree attributing latency
// per layer at /debug/trace?trace=<id>.

import (
	"net/http"
	"time"

	"diacap/internal/obs"
)

// TraceHeader carries the request's trace id on every traced response,
// resolvable at /debug/trace?trace=<id>.
const TraceHeader = "X-Diacap-Trace"

// Flight journal names, package-level consts per the preregister
// discipline (dialint checks Journal call sites).
const (
	// JournalRequests records every finished HTTP request (kind =
	// normalized endpoint) with status, duration, and trace id.
	JournalRequests = "requests"
	// JournalAdmission records admission state transitions (kind = the
	// state entered) with the score and dominant health component.
	JournalAdmission = "admission"
)

// observe opens the request's root span and journals the request. It
// runs outside instrument so the histogram middleware can read the span
// from the context for exemplars, and outside recover/timeout so even
// panicking or expired requests are journaled with their real status.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := normalizeEndpoint(r.URL.Path)
		ctx := r.Context()
		var sp *obs.Span
		if t := s.opts.Tracer; t != nil {
			if remote, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
				ctx, sp = t.RootFrom(ctx, "http "+ep, remote)
			} else {
				ctx, sp = t.Root(ctx, "http "+ep)
			}
		}
		if sp != nil {
			// Before the handler runs: the client must learn the trace id
			// even when the handler fails or times out mid-write.
			w.Header().Set(TraceHeader, sp.TraceID())
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		sp.SetAttr(obs.Str("endpoint", ep), obs.Str("method", r.Method), obs.Int("status", code))
		sp.End()
		s.jRequests.Record(ep, sp.TraceID(),
			obs.Int("status", code),
			obs.F64("durationMs", durationMs(time.Since(start))))
	})
}
