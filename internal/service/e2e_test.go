package service

// End-to-end test against a live in-process cluster: a real
// live.Cluster (TCP servers + clients over the instance's latencies)
// backs the HTTP service's LiveStatus, the service answers /v1/assign
// and /v1/assign-coords over httptest, and every D the API reports is
// recomputed from the returned assignment with core.Evaluator. The
// matrix path must agree bit-for-bit: JSON round-trips float64 exactly,
// and doAssign's MaxInteractionPath shares the eccentricity
// decomposition (and hence the exact float additions) with
// Evaluator.D. The coordinate path crosses internal/scale's own
// eccentricity bookkeeping and CoordsToMatrix's validation floor, so it
// gets the repo's cross-decomposition tolerance instead.

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"diacap/internal/core"
	"diacap/internal/dia"
	"diacap/internal/latency"
	"diacap/internal/live"
)

const e2eCrossTol = 1e-9 // relative; matches the core differential tests

// e2eHealth mirrors handleHealth's JSON shape, live section included.
type e2eHealth struct {
	Status string `json:"status"`
	Live   *struct {
		Servers     int   `json:"servers"`
		DeadServers int   `json:"deadServers"`
		Dead        []int `json:"dead"`
	} `json:"live"`
}

// e2eInstance builds the shared fixture: a ScaledLike matrix with
// disjoint server and client nodes, the way the live tests deal them.
func e2eInstance(t *testing.T, n, ns int, seed int64) (latency.Matrix, []int, []int, *core.Instance) {
	t.Helper()
	m := latency.ScaledLike(n, seed)
	servers := make([]int, ns)
	clients := make([]int, 0, n-ns)
	for i := 0; i < ns; i++ {
		servers[i] = i * (n / ns)
	}
	isServer := make(map[int]bool, ns)
	for _, s := range servers {
		isServer[s] = true
	}
	for i := 0; i < n; i++ {
		if !isServer[i] {
			clients = append(clients, i)
		}
	}
	in, err := core.NewInstanceTrusted(m, servers, clients)
	if err != nil {
		t.Fatal(err)
	}
	return m, servers, clients, in
}

func TestEndToEndAssignAgainstLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a TCP cluster and runs a real-time workload; skipped with -short")
	}
	m, servers, clients, in := e2eInstance(t, 24, 4, 3)

	// First leg: /v1/assign on a plain server; its assignment seeds the
	// cluster, so the deployment under test is exactly what the API
	// returned.
	plain := New(Options{MaxNodes: 256})
	rec := postJSON(t, plain, "/v1/assign", AssignRequest{
		Matrix:    [][]float64(m),
		Servers:   servers,
		Clients:   clients,
		Algorithm: "Greedy",
		Seed:      ptr[int64](7),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/assign status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignResponse](t, rec)

	ev, err := in.NewEvaluator(core.Assignment(resp.Assignment))
	if err != nil {
		t.Fatalf("returned assignment does not evaluate: %v", err)
	}
	if math.Float64bits(resp.D) != math.Float64bits(ev.D()) {
		t.Fatalf("reported D = %v (bits %x) != Evaluator recomputation %v (bits %x)",
			resp.D, math.Float64bits(resp.D), ev.D(), math.Float64bits(ev.D()))
	}
	total := 0
	for k, l := range resp.Loads {
		if l != ev.Load(k) {
			t.Fatalf("loads[%d] = %d, Evaluator says %d", k, l, ev.Load(k))
		}
		total += l
	}
	if total != in.NumClients() {
		t.Fatalf("loads sum to %d, want %d clients", total, in.NumClients())
	}

	// Boot the live cluster at δ = D with the Section II-C offsets.
	a := core.Assignment(resp.Assignment)
	off, err := in.ComputeOffsets(a)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := live.StartCluster(live.ClusterConfig{
		Instance:          in,
		Assignment:        a,
		Delta:             off.D,
		Offsets:           off,
		LatenessTolerance: 35, // headroom for loaded single-core machines
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Second leg: the same service fronting the cluster. /healthz must
	// surface the live section, and /v1/assign must agree with the
	// plain server byte-for-byte on a seeded request.
	s := New(Options{MaxNodes: 256, Live: cluster})
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", hrec.Code)
	}
	health := decodeBody[e2eHealth](t, hrec)
	if health.Status != "ok" {
		t.Fatalf("status = %q with all servers alive", health.Status)
	}
	if health.Live == nil {
		t.Fatal("live section missing with Options.Live set")
	}
	if health.Live.Servers != in.NumServers() || health.Live.DeadServers != 0 {
		t.Fatalf("live = %+v, want %d servers and 0 dead", health.Live, in.NumServers())
	}

	rec2 := postJSON(t, s, "/v1/assign", AssignRequest{
		Matrix:    [][]float64(m),
		Servers:   servers,
		Clients:   clients,
		Algorithm: "Greedy",
		Seed:      ptr[int64](7),
	})
	if rec2.Code != http.StatusOK {
		t.Fatalf("/v1/assign via live server: status = %d", rec2.Code)
	}
	resp2 := decodeBody[AssignResponse](t, rec2)
	if math.Float64bits(resp2.D) != math.Float64bits(resp.D) {
		t.Fatalf("live-backed server D = %v, plain server D = %v", resp2.D, resp.D)
	}

	// Drive a short real-time workload through the cluster: every op
	// executed on every replica, no deadline misses at δ = D.
	ops := dia.UniformWorkload(in.NumClients(), 12, 100, 25)
	res, err := cluster.RunWorkload(ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != len(ops)*in.NumServers() {
		t.Fatalf("executions = %d, want %d", res.Executions, len(ops)*in.NumServers())
	}
	if res.ServerLate != 0 || res.ClientLate != 0 {
		t.Fatalf("deadline misses at δ = D: %d server, %d client", res.ServerLate, res.ClientLate)
	}
}

func TestEndToEndAssignCoordsMatchesEvaluator(t *testing.T) {
	if testing.Short() {
		t.Skip("solves a 150-client coordinate instance; skipped with -short")
	}
	cfg := latency.DefaultConfig(150)
	coords, err := latency.GenerateCoords(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{MaxNodes: 256})
	rec := postJSON(t, s, "/v1/assign-coords", AssignCoordsRequest{
		Clients:      coords,
		PlaceServers: 5,
		Seed:         ptr[int64](9),
		AuditPairs:   500,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/assign-coords status = %d, body %s", rec.Code, rec.Body.String())
	}
	resp := decodeBody[AssignCoordsResponse](t, rec)
	if len(resp.Assignment) != len(coords) {
		t.Fatalf("assignment covers %d clients, want %d", len(resp.Assignment), len(coords))
	}
	if len(resp.Servers) != 5 {
		t.Fatalf("echoed %d servers, want 5", len(resp.Servers))
	}

	// Materialize the coordinate metric into a matrix instance (clients
	// first, then the echoed servers) and recompute D with Evaluator.
	nodes := append(append([]latency.Coord{}, coords...), resp.Servers...)
	full := latency.CoordsToMatrix(nodes)
	clientIdx := make([]int, len(coords))
	for i := range clientIdx {
		clientIdx[i] = i
	}
	serverIdx := make([]int, len(resp.Servers))
	for k := range serverIdx {
		serverIdx[k] = len(coords) + k
	}
	in, err := core.NewInstanceTrusted(full, serverIdx, clientIdx)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := in.NewEvaluator(core.Assignment(resp.Assignment))
	if err != nil {
		t.Fatalf("returned assignment does not evaluate: %v", err)
	}
	want := ev.D()
	if diff := math.Abs(resp.ExactD - want); diff > e2eCrossTol*math.Max(1, math.Abs(want)) {
		t.Fatalf("reported exactD = %v, Evaluator recomputation = %v (|Δ|=%g beyond %g rel)",
			resp.ExactD, want, diff, e2eCrossTol)
	}

	// The certificate chain must bracket the recomputed value.
	if resp.AuditedD > resp.ExactD+e2eCrossTol || resp.ExactD > resp.CertifiedD+e2eCrossTol {
		t.Fatalf("certificate order violated: audited %v ≤ exact %v ≤ certified %v",
			resp.AuditedD, resp.ExactD, resp.CertifiedD)
	}
	total := 0
	for _, l := range resp.Loads {
		total += l
	}
	if total != len(coords) {
		t.Fatalf("loads sum to %d, want %d clients", total, len(coords))
	}
}
