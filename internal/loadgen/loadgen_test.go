package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeServe implements just enough of the serving protocol for the
// generator to grade: it decodes the request with encoding/json and
// answers per the configured behavior.
type fakeServe struct {
	// behavior is consulted per request.
	behavior func(n int64) string // "ok" | "shed" | "shed-bare" | "partial" | "garbage" | "boom"
	requests atomic.Int64
	clients  atomic.Int64
}

func (f *fakeServe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.requests.Add(1)
	var req struct {
		Coord  []float64   `json:"coord"`
		Coords [][]float64 `json:"coords"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	unary := r.URL.Path == "/v1/assign-one"
	count := len(req.Coords)
	if unary {
		count = 1
	}
	switch f.behavior(n) {
	case "shed":
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		return
	case "shed-bare": // protocol violation: 429 without Retry-After
		w.WriteHeader(http.StatusTooManyRequests)
		return
	case "garbage":
		fmt.Fprint(w, `{"epoch":1,"servers":[`)
		return
	case "boom":
		http.Error(w, "internal", http.StatusInternalServerError)
		return
	case "partial":
		count /= 2
	}
	f.clients.Add(int64(count))
	if unary {
		fmt.Fprintf(w, `{"epoch":1,"d":10,"certifiedD":10,"server":0,"latencyMs":1.5}`)
		return
	}
	fmt.Fprint(w, `{"epoch":1,"d":10,"certifiedD":10,"servers":[`)
	for i := 0; i < count; i++ {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, "0")
	}
	fmt.Fprint(w, `],"latencyMs":[`)
	for i := 0; i < count; i++ {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, "1.5")
	}
	fmt.Fprint(w, "]}")
}

func always(kind string) func(int64) string { return func(int64) string { return kind } }

func runOnce(t *testing.T, f *fakeServe, mutate func(*Config)) *Result {
	t.Helper()
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)
	cfg := Config{
		URL:    srv.URL,
		Batch:  8,
		Seed:   1,
		Phases: []Phase{{Name: "steady", Duration: 200 * time.Millisecond, Workers: 4, Rate: 200}},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(res.Phases))
	}
	return res
}

func TestClosedLoopHealthyServer(t *testing.T) {
	f := &fakeServe{behavior: always("ok")}
	res := runOnce(t, f, nil)
	ps := res.Phases[0]
	if ps.OK == 0 || ps.Errors != 0 || ps.Shed != 0 || ps.Dropped != 0 {
		t.Fatalf("healthy closed loop: %+v", ps)
	}
	if ps.Requests != ps.OK {
		t.Fatalf("requests %d != ok %d", ps.Requests, ps.OK)
	}
	if want := ps.OK * 8; ps.Clients != want {
		t.Fatalf("clients %d, want %d (batch 8)", ps.Clients, want)
	}
	if !(ps.P50 > 0) || !(ps.P99 >= ps.P50) || !(ps.P999 >= ps.P99) {
		t.Fatalf("quantiles not ordered: p50=%v p99=%v p999=%v", ps.P50, ps.P99, ps.P999)
	}
	// Requests in flight at the phase deadline are cancelled and not
	// recorded, so the server may have seen up to Workers more.
	if got, saw := int64(ps.OK), f.requests.Load(); saw < got || saw > got+4 {
		t.Fatalf("generator counted %d, server saw %d", got, saw)
	}
}

func TestOpenLoopHonorsRate(t *testing.T) {
	f := &fakeServe{behavior: always("ok")}
	res := runOnce(t, f, func(c *Config) {
		c.Mode = Open
		c.Phases = []Phase{{Name: "steady", Duration: 300 * time.Millisecond, Rate: 100}}
	})
	ps := res.Phases[0]
	// 100/s for 0.3s ⇒ 30 arrivals; allow generous slack for scheduler
	// jitter but catch a runaway (closed-loop would do thousands).
	if ps.Requests < 20 || ps.Requests > 40 {
		t.Fatalf("open loop at 100/s for 300ms made %d arrivals, want ≈30", ps.Requests)
	}
	if ps.Errors != 0 {
		t.Fatalf("errors: %+v", ps)
	}
}

func TestShedCountedSeparately(t *testing.T) {
	// Every third request shed with the full protocol.
	f := &fakeServe{behavior: func(n int64) string {
		if n%3 == 0 {
			return "shed"
		}
		return "ok"
	}}
	res := runOnce(t, f, nil)
	ps := res.Phases[0]
	if ps.Shed == 0 {
		t.Fatalf("no sheds recorded: %+v", ps)
	}
	if ps.Errors != 0 {
		t.Fatalf("sheds misclassified as errors: %+v", ps)
	}
	if ps.OK+ps.Shed != ps.Requests {
		t.Fatalf("partition broken: %+v", ps)
	}
}

func TestShedWithoutRetryAfterIsError(t *testing.T) {
	f := &fakeServe{behavior: always("shed-bare")}
	res := runOnce(t, f, nil)
	ps := res.Phases[0]
	if ps.Errors == 0 || ps.Shed != 0 {
		t.Fatalf("429 without Retry-After must be an error, not a shed: %+v", ps)
	}
	if ps.FirstError == "" {
		t.Fatal("FirstError not captured")
	}
}

func TestPartialBatchIsError(t *testing.T) {
	f := &fakeServe{behavior: always("partial")}
	res := runOnce(t, f, nil)
	ps := res.Phases[0]
	if ps.OK != 0 || ps.Errors == 0 {
		t.Fatalf("partial batches must be errors: %+v", ps)
	}
}

func TestMalformedBodyIsError(t *testing.T) {
	f := &fakeServe{behavior: always("garbage")}
	res := runOnce(t, f, nil)
	if ps := res.Phases[0]; ps.OK != 0 || ps.Errors == 0 {
		t.Fatalf("malformed bodies must be errors: %+v", ps)
	}
}

func TestServerErrorIsError(t *testing.T) {
	f := &fakeServe{behavior: always("boom")}
	res := runOnce(t, f, nil)
	ps := res.Phases[0]
	if ps.OK != 0 || ps.Errors == 0 {
		t.Fatalf("500s must be errors: %+v", ps)
	}
	if res.TotalErrors() != ps.Errors {
		t.Fatalf("TotalErrors %d != %d", res.TotalErrors(), ps.Errors)
	}
}

func TestUnaryEndpointShape(t *testing.T) {
	f := &fakeServe{behavior: always("ok")}
	res := runOnce(t, f, func(c *Config) {
		c.Endpoint = "/v1/assign-one"
		c.Batch = 99 // forced to 1 for unary
	})
	ps := res.Phases[0]
	if ps.Errors != 0 || ps.OK == 0 {
		t.Fatalf("unary run: %+v", ps)
	}
	if ps.Clients != ps.OK {
		t.Fatalf("unary clients %d != ok %d", ps.Clients, ps.OK)
	}
	if res.Batch != 1 {
		t.Fatalf("unary batch forced to %d, want 1", res.Batch)
	}
}

func TestPhaseOrderAndSkip(t *testing.T) {
	f := &fakeServe{behavior: always("ok")}
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)
	r, err := New(Config{
		URL:  srv.URL,
		Seed: 1,
		Phases: []Phase{
			{Name: "ramp", Duration: 80 * time.Millisecond, Workers: 2, Ramp: true},
			{Name: "skipped", Duration: 0},
			{Name: "steady", Duration: 80 * time.Millisecond, Workers: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("got %d phases, want 2 (zero-duration skipped)", len(res.Phases))
	}
	if res.Phases[0].Name != "ramp" || res.Phases[1].Name != "steady" {
		t.Fatalf("phase order: %q, %q", res.Phases[0].Name, res.Phases[1].Name)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},
		{URL: "http://x", Phases: []Phase{{Name: "p", Duration: time.Second}}},
		{URL: "http://x", Mode: Open, Phases: []Phase{{Name: "p", Duration: time.Second}}},
		{URL: "http://x", Mode: "sideways", Phases: []Phase{{Name: "p", Duration: time.Second, Workers: 1}}},
		{URL: "http://x"},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config %+v", i, cfg)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	f := &fakeServe{behavior: always("ok")}
	srv := httptest.NewServer(f)
	t.Cleanup(srv.Close)
	r, err := New(Config{
		URL:  srv.URL,
		Seed: 1,
		Phases: []Phase{
			{Name: "long", Duration: 10 * time.Second, Workers: 2},
			{Name: "never", Duration: 10 * time.Second, Workers: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := r.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("cancelled mid-first-phase, got %d phases", len(res.Phases))
	}
}
