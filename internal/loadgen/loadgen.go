// Package loadgen drives the serving endpoints (/v1/assign-one,
// /v1/assign-batch) over the real TCP/HTTP stack — net/http client,
// keep-alive connections, full request/response cycle — and reports
// per-phase latency quantiles. It is the measurement half of the
// zero-alloc serving path: the AllocsPerRun tests pin what the handler
// does per request, this package pins what a client actually observes
// under ramp, steady, and overload phases.
//
// Two generator disciplines:
//
//   - Closed loop (Workers): N workers issue back-to-back requests, each
//     waiting for its response before sending the next. Offered load
//     adapts to the server — this measures best-case service latency at
//     a given concurrency.
//   - Open loop (Rate): arrivals fire on a fixed schedule whether or not
//     earlier requests have completed, the discipline that exposes
//     queueing collapse under overload (closed loops self-throttle and
//     hide it). In-flight requests are capped at MaxInFlight; arrivals
//     beyond the cap are counted as Dropped, not silently skipped.
//
// Classification is strict about the serving protocol: a 429 carrying
// Retry-After is admission shed and counted separately (sheds are the
// server protecting itself, not a failure); everything else that is not
// a complete, well-formed 200 — transport errors, unexpected statuses,
// a 429 missing Retry-After, malformed JSON, or a partial batch with
// fewer answers than questions — counts as an error. The storm
// regression test leans on exactly this: a batch split by a mid-request
// shed would surface here as an error, never as a shed.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"diacap/internal/latency"
	"diacap/internal/obs"
)

// Mode selects the generator discipline.
type Mode string

const (
	// Closed runs Phase.Workers synchronous request loops.
	Closed Mode = "closed"
	// Open fires arrivals at Phase.Rate per second regardless of
	// completions.
	Open Mode = "open"
)

// Phase is one segment of a run. Phases execute in order; each gets its
// own histogram and counters so overload pain cannot hide inside a
// steady-state average.
type Phase struct {
	// Name labels the phase in results and metric series ("ramp",
	// "steady", "overload", ...).
	Name string
	// Duration is how long the phase runs. Zero-duration phases are
	// skipped.
	Duration time.Duration
	// Workers is the closed-loop concurrency (Closed mode).
	Workers int
	// Rate is the open-loop arrival rate in requests/sec (Open mode).
	Rate float64
	// Ramp grows the offered load linearly from zero to the target over
	// the phase: staggered worker starts in closed mode, a linearly
	// increasing arrival rate in open mode.
	Ramp bool
}

// Config describes a run.
type Config struct {
	// URL is the server base, e.g. "http://127.0.0.1:8080".
	URL string
	// Endpoint is the serving path; default "/v1/assign-batch". The
	// unary response shape is validated when Endpoint is
	// "/v1/assign-one".
	Endpoint string
	// Batch is the number of coordinates per batch request (default 64;
	// forced to 1 for the unary endpoint).
	Batch int
	// Mode selects closed or open loop (default Closed).
	Mode Mode
	// Phases run in order.
	Phases []Phase
	// Seed feeds the synthetic coordinate generator; equal seeds offer
	// identical request bodies.
	Seed int64
	// MaxInFlight caps concurrent open-loop requests (default 512).
	MaxInFlight int
	// Client overrides the HTTP client (default: keep-alive transport
	// with MaxInFlight idle connections and a 10s request timeout).
	Client *http.Client
	// Registry, when set, also publishes each phase's latency histogram
	// and counters as diaload_* series for scraping mid-run.
	Registry *obs.Registry
}

// PhaseStats is the outcome of one phase. Counters partition every
// arrival: OK + Shed + Errors + Dropped == Requests.
type PhaseStats struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"durationNs"`
	// Requests is every arrival the phase produced.
	Requests uint64 `json:"requests"`
	// OK counts complete, well-formed 200 responses.
	OK uint64 `json:"ok"`
	// Clients is the total coordinates resolved across OK responses.
	Clients uint64 `json:"clients"`
	// Shed counts whole-request 429s carrying Retry-After.
	Shed uint64 `json:"shed"`
	// Errors counts everything else: transport failures, unexpected
	// statuses, 429 without Retry-After, malformed or partial bodies.
	Errors uint64 `json:"errors"`
	// Dropped counts open-loop arrivals refused locally because
	// MaxInFlight was saturated.
	Dropped uint64 `json:"dropped"`
	// FirstError preserves the first error's description for diagnosis.
	FirstError string `json:"firstError,omitempty"`
	// P50/P99/P999 are OK-request latency quantiles in milliseconds
	// (NaN when no request succeeded).
	P50  float64 `json:"p50Ms"`
	P99  float64 `json:"p99Ms"`
	P999 float64 `json:"p999Ms"`
}

// Throughput returns successful requests per second.
func (ps *PhaseStats) Throughput() float64 {
	if ps.Duration <= 0 {
		return 0
	}
	return float64(ps.OK) / ps.Duration.Seconds()
}

// ClientRate returns resolved clients (coordinates) per second.
func (ps *PhaseStats) ClientRate() float64 {
	if ps.Duration <= 0 {
		return 0
	}
	return float64(ps.Clients) / ps.Duration.Seconds()
}

// Result is a whole run.
type Result struct {
	Endpoint string       `json:"endpoint"`
	Mode     Mode         `json:"mode"`
	Batch    int          `json:"batch"`
	Phases   []PhaseStats `json:"phases"`
}

// TotalErrors sums non-shed errors across phases — the quantity a CI
// smoke gate requires to be zero.
func (r *Result) TotalErrors() uint64 {
	var n uint64
	for i := range r.Phases {
		n += r.Phases[i].Errors
	}
	return n
}

// TotalShed sums admission sheds across phases.
func (r *Result) TotalShed() uint64 {
	var n uint64
	for i := range r.Phases {
		n += r.Phases[i].Shed
	}
	return n
}

// nLoadLatency is the per-phase latency series diaload publishes when
// given a registry.
const nLoadLatency = "diaload_latency_ms"

// loadBuckets resolve sub-millisecond loopback latencies; the standard
// LatencyMsBuckets start at 0.5ms, which would flatten every quantile
// of an in-process serving path into one bucket.
var loadBuckets = []float64{0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2500, 5000}

// unaryResponse / batchResponse mirror the serving response shapes
// (service.AssignOneResponse / AssignBatchResponse). Declared here
// rather than imported so the service package's tests can drive loadgen
// without an import cycle.
type unaryResponse struct {
	Epoch     uint64   `json:"epoch"`
	Server    *int     `json:"server"`
	LatencyMs *float64 `json:"latencyMs"`
}

type batchResponse struct {
	Epoch     uint64    `json:"epoch"`
	Servers   []int     `json:"servers"`
	LatencyMs []float64 `json:"latencyMs"`
}

// phaseRun is the mutable state one running phase accumulates.
type phaseRun struct {
	stats PhaseStats
	hist  *obs.Histogram
	mu    sync.Mutex // guards stats counters + FirstError
}

func (pr *phaseRun) record(lat time.Duration, clients int, shed bool, err error) {
	pr.mu.Lock()
	pr.stats.Requests++
	switch {
	case err != nil:
		pr.stats.Errors++
		if pr.stats.FirstError == "" {
			pr.stats.FirstError = err.Error()
		}
	case shed:
		pr.stats.Shed++
	default:
		pr.stats.OK++
		pr.stats.Clients += uint64(clients)
	}
	pr.mu.Unlock()
	if err == nil && !shed {
		pr.hist.Observe(float64(lat) / float64(time.Millisecond))
	}
}

func (pr *phaseRun) drop() {
	pr.mu.Lock()
	pr.stats.Requests++
	pr.stats.Dropped++
	pr.mu.Unlock()
}

// Runner executes a Config. Construct with New (validates and
// pre-encodes request bodies), then Run.
type Runner struct {
	cfg    Config
	client *http.Client
	bodies [][]byte
	unary  bool
}

// New validates cfg, applies defaults, and pre-encodes a pool of
// request bodies from synthetic coordinates.
func New(cfg Config) (*Runner, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("loadgen: URL is required")
	}
	if cfg.Endpoint == "" {
		cfg.Endpoint = "/v1/assign-batch"
	}
	unary := cfg.Endpoint == "/v1/assign-one"
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if unary {
		cfg.Batch = 1
	}
	if cfg.Mode == "" {
		cfg.Mode = Closed
	}
	if cfg.Mode != Closed && cfg.Mode != Open {
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: at least one phase is required")
	}
	for i := range cfg.Phases {
		p := &cfg.Phases[i]
		if p.Duration < 0 {
			return nil, fmt.Errorf("loadgen: phase %q: negative duration", p.Name)
		}
		if cfg.Mode == Closed && p.Workers <= 0 && p.Duration > 0 {
			return nil, fmt.Errorf("loadgen: phase %q: closed mode needs Workers > 0", p.Name)
		}
		if cfg.Mode == Open && p.Rate <= 0 && p.Duration > 0 {
			return nil, fmt.Errorf("loadgen: phase %q: open mode needs Rate > 0", p.Name)
		}
	}
	bodies, err := encodeBodies(cfg.Batch, cfg.Seed, unary)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.MaxInFlight,
				MaxIdleConnsPerHost: cfg.MaxInFlight,
			},
		}
	}
	return &Runner{cfg: cfg, client: client, bodies: bodies, unary: unary}, nil
}

// bodyPool is the number of distinct pre-encoded request bodies workers
// rotate through — enough variety to defeat any accidental caching,
// cheap enough to build up front.
const bodyPool = 32

// encodeBodies renders the request-body pool. Bodies are built once so
// the generator's own JSON encoding never sits on the measured path.
func encodeBodies(batch int, seed int64, unary bool) ([][]byte, error) {
	cs, err := latency.GenerateCoords(latency.DefaultConfig(max(batch+bodyPool, 64)), seed)
	if err != nil {
		return nil, fmt.Errorf("loadgen: generating coordinates: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	bodies := make([][]byte, bodyPool)
	appendCoord := func(b []byte, c latency.Coord) []byte {
		b = append(b, '[')
		b = strconv.AppendFloat(b, c.X, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, c.Y, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, c.Z, 'g', -1, 64)
		b = append(b, ',')
		b = strconv.AppendFloat(b, c.H, 'g', -1, 64)
		return append(b, ']')
	}
	for i := range bodies {
		var b []byte
		if unary {
			b = append(b, `{"coord":`...)
			b = appendCoord(b, cs[rng.Intn(len(cs))])
		} else {
			b = append(b, `{"coords":[`...)
			start := rng.Intn(len(cs))
			for j := 0; j < batch; j++ {
				if j > 0 {
					b = append(b, ',')
				}
				b = appendCoord(b, cs[(start+j)%len(cs)])
			}
			b = append(b, ']')
		}
		bodies[i] = append(b, '}')
	}
	return bodies, nil
}

// Run executes every phase in order and returns the per-phase stats.
// Cancelling ctx ends the current phase early (its stats cover the
// elapsed portion) and skips the rest.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	res := &Result{Endpoint: r.cfg.Endpoint, Mode: r.cfg.Mode, Batch: r.cfg.Batch}
	for i := range r.cfg.Phases {
		p := r.cfg.Phases[i]
		if p.Duration == 0 {
			continue
		}
		pr := &phaseRun{stats: PhaseStats{Name: p.Name}}
		pr.hist = r.phaseHistogram(p.Name)
		start := time.Now()
		phaseCtx, cancel := context.WithTimeout(ctx, p.Duration)
		if r.cfg.Mode == Closed {
			r.runClosed(phaseCtx, p, pr)
		} else {
			r.runOpen(phaseCtx, p, pr)
		}
		cancel()
		pr.stats.Duration = time.Since(start)
		pr.stats.P50 = pr.hist.Quantile(0.50)
		pr.stats.P99 = pr.hist.Quantile(0.99)
		pr.stats.P999 = pr.hist.Quantile(0.999)
		res.Phases = append(res.Phases, pr.stats)
		if ctx.Err() != nil {
			break
		}
	}
	return res, ctx.Err()
}

// phaseHistogram returns the phase's latency histogram — a scrapeable
// registry series when Config.Registry is set, a private one otherwise.
func (r *Runner) phaseHistogram(phase string) *obs.Histogram {
	reg := r.cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return reg.Histogram(nLoadLatency,
		"diaload per-phase request latency in milliseconds (successful requests only).",
		loadBuckets, obs.L("phase", phase), obs.L("endpoint", r.cfg.Endpoint))
}

// runClosed drives p.Workers synchronous loops until the phase context
// expires. In a ramp phase worker i starts i/Workers of the way in, so
// offered concurrency grows linearly to the target.
func (r *Runner) runClosed(ctx context.Context, p Phase, pr *phaseRun) {
	var wg sync.WaitGroup
	for w := 0; w < p.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if p.Ramp {
				delay := time.Duration(int64(p.Duration) * int64(w) / int64(p.Workers))
				select {
				case <-ctx.Done():
					return
				case <-time.After(delay):
				}
			}
			for i := w; ctx.Err() == nil; i++ {
				r.issue(ctx, pr, r.bodies[i%len(r.bodies)])
			}
		}(w)
	}
	wg.Wait()
}

// runOpen fires arrivals on the open-loop schedule. Arrival n is due at
// the time where the integral of the (possibly ramping) rate reaches n,
// independent of how long requests take — the server falling behind
// does not slow the generator down, it fills MaxInFlight and then shows
// up as Dropped.
func (r *Runner) runOpen(ctx context.Context, p Phase, pr *phaseRun) {
	sem := make(chan struct{}, r.cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	dur := p.Duration
	for n := 0; ; n++ {
		// Due time for arrival n: constant rate ⇒ n/Rate; linear ramp
		// from 0 to Rate over dur ⇒ rate(t) = Rate·t/dur integrates to
		// Rate·t²/(2·dur) = n, i.e. t = sqrt(2·n·dur/Rate).
		var due time.Duration
		if p.Ramp {
			due = time.Duration(math.Sqrt(2 * float64(n) * float64(dur) / p.Rate))
		} else {
			due = time.Duration(float64(n) / p.Rate * float64(time.Second))
		}
		if due >= dur {
			break
		}
		wait := due - time.Since(start)
		if wait > 0 {
			select {
			case <-ctx.Done():
				wg.Wait()
				return
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				defer func() { <-sem }()
				r.issue(ctx, pr, r.bodies[n%len(r.bodies)])
			}(n)
		default:
			pr.drop()
		}
	}
	wg.Wait()
}

// issue sends one request and classifies the outcome. Latency covers
// send through full body read — what a broker calling the serving tier
// actually waits.
func (r *Runner) issue(ctx context.Context, pr *phaseRun, body []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.URL+r.cfg.Endpoint, bytes.NewReader(body))
	if err != nil {
		pr.record(0, 0, false, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // phase deadline, not a server failure
		}
		pr.record(0, 0, false, err)
		return
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		pr.record(0, 0, false, fmt.Errorf("reading response: %w", err))
		return
	}
	clients, shed, err := r.classify(resp, data)
	pr.record(lat, clients, shed, err)
}

// classify enforces the serving protocol on one response.
func (r *Runner) classify(resp *http.Response, data []byte) (clients int, shed bool, err error) {
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		if resp.Header.Get("Retry-After") == "" {
			return 0, false, fmt.Errorf("429 without Retry-After")
		}
		return 0, true, nil
	default:
		return 0, false, fmt.Errorf("status %d: %s", resp.StatusCode, firstLine(data))
	}
	if r.unary {
		var u unaryResponse
		if err := json.Unmarshal(data, &u); err != nil {
			return 0, false, fmt.Errorf("malformed unary response: %w", err)
		}
		if u.Server == nil || u.LatencyMs == nil {
			return 0, false, fmt.Errorf("incomplete unary response: %s", firstLine(data))
		}
		return 1, false, nil
	}
	var b batchResponse
	if err := json.Unmarshal(data, &b); err != nil {
		return 0, false, fmt.Errorf("malformed batch response: %w", err)
	}
	// The atomicity contract: a 200 answers every coordinate or it is a
	// protocol violation. A shed can never truncate a batch.
	if len(b.Servers) != r.cfg.Batch || len(b.LatencyMs) != r.cfg.Batch {
		return 0, false, fmt.Errorf("partial batch: %d/%d servers, %d/%d latencies",
			len(b.Servers), r.cfg.Batch, len(b.LatencyMs), r.cfg.Batch)
	}
	return r.cfg.Batch, false, nil
}

// firstLine truncates a response body for error messages.
func firstLine(data []byte) string {
	if i := bytes.IndexByte(data, '\n'); i >= 0 {
		data = data[:i]
	}
	if len(data) > 120 {
		data = data[:120]
	}
	return string(data)
}
