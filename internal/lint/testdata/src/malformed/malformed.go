// Package malformed carries an ignore directive with no reason: the
// engine must flag the directive itself and still report the finding it
// failed to suppress.
package malformed

func eq(a, b float64) bool {
	//lint:ignore dialint/float-eq
	return a == b
}
