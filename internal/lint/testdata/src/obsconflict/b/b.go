// Package b registers the same metric name as package a with a
// different help string — the cross-package conflict obs-preregister
// exists to catch.
package b

import "diacap/internal/obs"

const nShared = "demo_conflict_total"

// Register installs the instrument.
func Register(reg *obs.Registry) {
	reg.Counter(nShared, "Conflicting help, version B.").Inc()
}
