// Package a registers the shared metric with one help string.
package a

import "diacap/internal/obs"

const nShared = "demo_conflict_total"

// Register installs the instrument.
func Register(reg *obs.Registry) {
	reg.Counter(nShared, "Conflicting help, version A.").Inc()
}
