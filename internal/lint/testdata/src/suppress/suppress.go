// Package suppress exercises the hardened suppression grammar: digits
// are legal in rule names, trailing junk and a missing dialint/ prefix
// are unparseable (and therefore flagged, not silently ignored).
package suppress

func eqSuppressed(a, b float64) bool {
	//lint:ignore dialint/float-eq comparing against a sentinel stored verbatim
	return a == b
}

func digitsInRule(a, b float64) bool {
	// Parses cleanly (digits are allowed in rule names) but names a rule
	// that is not float-eq, so the finding below still reports and no
	// malformed-ignore fires.
	//lint:ignore dialint/float-eq-v2 reserved for a future rule
	return a == b
}

func trailingJunk(a, b float64) bool {
	//lint:ignore dialint/float-eq!force some reason
	return a == b
}

func missingPrefix(a, b float64) bool {
	//lint:ignore float-eq some reason
	return a == b
}
