// Package snapconsumer imports the real shard package and tampers with
// a received snapshot: the published-type fact exported while analyzing
// diacap/internal/shard must travel here and flag the write.
package snapconsumer

import "diacap/internal/shard"

func tamper(s *shard.Snapshot) {
	s.Epoch = 0
}

func buildOwn(n int) *shard.Snapshot {
	s := &shard.Snapshot{}
	s.Assignment = make([]int, n) // clean: mutating a fresh local build
	return s
}
