package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// parseFunc parses src (a complete function declaration) and builds its
// CFG. Marker calls — statements like `a()` — let tests name program
// points without depending on block numbering.
func parseFunc(t *testing.T, src string) (*token.FileSet, *ast.FuncDecl, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test_src.go", "package p\n\nfunc a()\nfunc b()\nfunc c()\nfunc d()\nfunc e()\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fn *ast.FuncDecl
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("no function with a body in source")
	}
	return fset, fn, BuildCFG(fn, fn.Body)
}

// markerPos finds the position of the call to the named marker.
func markerPos(t *testing.T, fn *ast.FuncDecl, name string) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
			pos = call.Pos()
		}
		return true
	})
	if !pos.IsValid() {
		t.Fatalf("marker %s() not found", name)
	}
	return pos
}

// markersIn lists the marker calls (a–e) among a node set, sorted.
// FuncLit bodies are skipped: the CFG treats literals as opaque values,
// so a marker inside one is not "executed at" the enclosing statement.
func markersIn(nodes []ast.Node) []string {
	seen := map[string]bool{}
	for _, n := range nodes {
		ast.Inspect(n, func(sub ast.Node) bool {
			if _, ok := sub.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := sub.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && len(id.Name) == 1 && id.Name[0] >= 'a' && id.Name[0] <= 'e' {
					seen[id.Name] = true
				}
			}
			return true
		})
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

func TestCFGReachableAfter(t *testing.T) {
	// Each case asserts which marker calls may execute strictly after
	// marker "a" (including "a" itself only when it sits in a cycle).
	cases := []struct {
		name string
		src  string
		want string // comma-joined sorted markers
	}{
		{
			name: "straight line",
			src:  `func f() { a(); b(); c() }`,
			want: "b,c",
		},
		{
			name: "if branches rejoin",
			src: `func f(x bool) {
				a()
				if x { b() } else { c() }
				d()
			}`,
			want: "b,c,d",
		},
		{
			name: "if before marker is unreachable",
			src: `func f(x bool) {
				if x { b() }
				a()
				c()
			}`,
			want: "c",
		},
		{
			name: "for loop repeats its body",
			src: `func f(n int) {
				for i := 0; i < n; i++ {
					a()
				}
				b()
			}`,
			want: "a,b",
		},
		{
			name: "range loop repeats its body",
			src: `func f(xs []int) {
				for range xs {
					a()
					b()
				}
				c()
			}`,
			want: "a,b,c",
		},
		{
			name: "break leaves the loop",
			src: `func f(n int) {
				for {
					a()
					break
				}
				b()
			}`,
			want: "b",
		},
		{
			name: "continue re-enters the loop",
			src: `func f(xs []int) {
				for range xs {
					a()
					continue
				}
				b()
			}`,
			want: "a,b",
		},
		{
			name: "switch cases are exclusive",
			src: `func f(x int) {
				switch x {
				case 1:
					a()
					b()
				case 2:
					c()
				}
				d()
			}`,
			want: "b,d",
		},
		{
			name: "fallthrough reaches the next case",
			src: `func f(x int) {
				switch x {
				case 1:
					a()
					fallthrough
				case 2:
					c()
				default:
					d()
				}
				e()
			}`,
			want: "c,e",
		},
		{
			name: "select branches are exclusive",
			src: `func f(ch chan int) {
				select {
				case <-ch:
					a()
					b()
				default:
					c()
				}
				d()
			}`,
			want: "b,d",
		},
		{
			name: "return stops the flow",
			src: `func f(x bool) {
				a()
				if x { return }
				b()
			}`,
			want: "b",
		},
		{
			name: "panic terminates the block",
			src: `func f() {
				a()
				panic("no")
				b()
			}`,
			want: "",
		},
		{
			name: "os.Exit terminates like panic",
			src: `func f() {
				a()
				os.Exit(1)
				b()
			}`,
			want: "",
		},
		{
			name: "goto jumps backward into a cycle",
			src: `func f() {
			loop:
				a()
				b()
				goto loop
			}`,
			want: "a,b",
		},
		{
			name: "goto jumps forward over a statement",
			src: `func f() {
				a()
				goto done
				b()
			done:
				c()
			}`,
			want: "c",
		},
		{
			name: "labeled break exits the outer loop",
			src: `func f(xs []int) {
			outer:
				for range xs {
					for {
						a()
						break outer
					}
				}
				b()
			}`,
			want: "b",
		},
		{
			name: "func literal body is opaque",
			src: `func f() {
				a()
				g := func() { b() }
				g()
				c()
			}`,
			want: "c",
		},
		{
			name: "defer arguments stay in place",
			src: `func f() {
				a()
				defer b()
				c()
			}`,
			want: "b,c",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, fn, cfg := parseFunc(t, tc.src)
			got := strings.Join(markersIn(cfg.ReachableAfter(markerPos(t, fn, "a"))), ",")
			if got != tc.want {
				t.Errorf("reachable after a() = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestCFGStructure(t *testing.T) {
	// Structural invariants every graph must satisfy, checked over a
	// function exercising each construct at once.
	src := `func f(xs []int, ch chan int) {
		a()
		if len(xs) > 0 {
			b()
		}
		for i := range xs {
			_ = i
			if xs[0] == 0 {
				continue
			}
			c()
		}
		switch len(xs) {
		case 0:
			d()
		default:
		}
		select {
		case <-ch:
		default:
		}
		defer e()
		return
	}`
	_, _, cfg := parseFunc(t, src)

	if cfg.Entry() != cfg.Blocks[0] {
		t.Error("entry is not Blocks[0]")
	}
	if cfg.Exit != cfg.Blocks[len(cfg.Blocks)-1] {
		t.Error("exit is not the last block")
	}
	if len(cfg.Exit.Nodes) != 0 {
		t.Errorf("exit has %d nodes, want 0", len(cfg.Exit.Nodes))
	}
	if len(cfg.Exit.Succs) != 0 {
		t.Error("exit must have no successors")
	}
	if len(cfg.Defers) != 1 {
		t.Errorf("collected %d defers, want 1", len(cfg.Defers))
	}
	for _, b := range cfg.Blocks {
		if b.Index >= len(cfg.Blocks) || cfg.Blocks[b.Index] != b {
			t.Fatalf("block index %d inconsistent", b.Index)
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("edge %d->%d missing the reverse pred link", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Errorf("pred %d of %d missing the forward succ link", p.Index, b.Index)
			}
		}
	}
	// Every non-entry, non-island block is reachable from entry; exit is.
	reach := map[*Block]bool{cfg.Entry(): true}
	stack := []*Block{cfg.Entry()}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	if !reach[cfg.Exit] {
		t.Error("exit unreachable from entry")
	}
}

func containsBlock(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

func TestCFGBlockOfTightestSpan(t *testing.T) {
	// A RangeStmt head node spans its whole body; BlockOf must still
	// attribute an inner statement to the body block, not the head.
	src := `func f(xs []int) {
		for _, x := range xs {
			a()
			_ = x
		}
	}`
	_, fn, cfg := parseFunc(t, src)
	blk, idx := cfg.BlockOf(markerPos(t, fn, "a"))
	if blk == nil {
		t.Fatal("BlockOf found nothing")
	}
	if _, isRange := blk.Nodes[idx].(*ast.RangeStmt); isRange {
		t.Errorf("BlockOf attributed the marker to the RangeStmt head, want the body statement")
	}
}

func TestCFGNilBody(t *testing.T) {
	cfg := BuildCFG(nil, nil)
	if len(cfg.Blocks) != 2 {
		t.Fatalf("nil body built %d blocks, want entry+exit", len(cfg.Blocks))
	}
	if got := fmt.Sprint(cfg.Entry().Succs[0].Index); got != fmt.Sprint(cfg.Exit.Index) {
		t.Errorf("entry edges to block %s, want exit %d", got, cfg.Exit.Index)
	}
}
