package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Directives are dialint's annotation mechanism: a `//dialint:<name>`
// comment in a declaration's doc group attaches machine-readable intent
// to that declaration. Current names:
//
//   - //dialint:hotpath      (on a func) — the function is on a serving
//     or kernel hot path and must not allocate; the hotpath-alloc
//     analyzer flags allocating constructs inside it, and an
//     AllocsPerRun test should pin the contract at runtime.
//   - //dialint:wallclock-ok (on a func) — the function is an
//     observability sink; wall-clock values may flow into its arguments
//     without tripping wallclock-determinism.
//   - //dialint:published    (on a type) — values of the type are
//     treated as published snapshots by snapshot-immutable even if no
//     atomic.Pointer.Store of the type is visible in the package.
//
// Unlike //lint:ignore, a directive is not a suppression: it widens or
// narrows what the analyzers check, and the analyzers verify the code
// against the declared intent.

// Directive is one parsed //dialint:<name> annotation.
type Directive struct {
	// Name is the directive name ("hotpath", "wallclock-ok", ...).
	Name string
	// Pos is the position of the directive comment.
	Pos token.Position
	// Fn is the annotated function declaration, when the directive sits
	// in a FuncDecl doc group (nil otherwise).
	Fn *ast.FuncDecl
	// Type is the annotated type spec, for type-level directives (nil
	// otherwise).
	Type *ast.TypeSpec
}

var directiveRE = regexp.MustCompile(`^//dialint:([a-z][a-z0-9-]*)(?:\s.*)?$`)

// Directives returns the package's parsed //dialint directives, in
// source order, computed once and cached.
func (p *Pass) Directives() []Directive {
	if p.Pkg.dirsParsed {
		return p.Pkg.dirs
	}
	p.Pkg.dirsParsed = true
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				for _, name := range directiveNames(d.Doc) {
					p.Pkg.dirs = append(p.Pkg.dirs, Directive{
						Name: name,
						Pos:  p.Pkg.Fset.Position(d.Pos()),
						Fn:   d,
					})
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					// A one-spec `type X ...` hangs its doc on the
					// GenDecl; grouped specs document the TypeSpec.
					doc := ts.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					for _, name := range directiveNames(doc) {
						p.Pkg.dirs = append(p.Pkg.dirs, Directive{
							Name: name,
							Pos:  p.Pkg.Fset.Position(ts.Pos()),
							Type: ts,
						})
					}
				}
			}
		}
	}
	return p.Pkg.dirs
}

func directiveNames(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		if m := directiveRE.FindStringSubmatch(strings.TrimSpace(c.Text)); m != nil {
			out = append(out, m[1])
		}
	}
	return out
}

// FuncCFG builds (or returns the cached) control-flow graph for a
// function. fn must be an *ast.FuncDecl or *ast.FuncLit of this
// package. Graphs are cached on the Package, so several analyzers
// walking the same functions share one construction.
func (p *Pass) FuncCFG(fn ast.Node) *CFG {
	if p.Pkg.cfgs == nil {
		p.Pkg.cfgs = make(map[ast.Node]*CFG)
	}
	if c, ok := p.Pkg.cfgs[fn]; ok {
		return c
	}
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	c := BuildCFG(fn, body)
	p.Pkg.cfgs[fn] = c
	return c
}
