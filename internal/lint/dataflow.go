package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is dialint's dataflow layer, built on the CFGs of cfg.go:
//
//   - ReachingDefs: classic forward may-analysis answering "which
//     assignments to variable v may be the one in effect at this
//     statement". Analyzers use it to trace a value back to its origin
//     (a fresh allocation, a parameter, a call result).
//   - Aliases: a light flow-insensitive alias/escape lattice rooted at
//     one variable: the set of locals that may hold the same reference,
//     and whether the value leaks out of the function through anything
//     other than a direct call argument.
//
// Both are deliberately conservative may-analyses over a single
// function; there is no interprocedural propagation here (analyzers
// bridge functions with package facts where they need to).

// Def is one definition of a variable: the statement that assigned it,
// or the function entry for parameters, receivers, and captured
// variables (Node == nil).
type Def struct {
	// Obj is the defined variable.
	Obj types.Object
	// Node is the defining statement or range/type-switch clause; nil
	// for definitions live at function entry.
	Node ast.Node
}

// defSet is a reaching-definitions lattice element.
type defSet map[Def]bool

// ReachingDefs holds the fixpoint solution for one CFG.
type ReachingDefs struct {
	cfg  *CFG
	info *types.Info
	in   map[*Block]defSet
}

// NewReachingDefs solves reaching definitions over cfg. Parameters and
// the receiver of the enclosing function enter the analysis as entry
// definitions with a nil Node; so does any variable first written
// through a nested position the walker does not model, keeping the
// analysis sound for "did this value come from a fresh allocation"
// queries.
func NewReachingDefs(cfg *CFG, info *types.Info) *ReachingDefs {
	rd := &ReachingDefs{
		cfg:  cfg,
		info: info,
		in:   make(map[*Block]defSet, len(cfg.Blocks)),
	}
	entry := make(defSet)
	for _, obj := range entryObjects(cfg.Fn, info) {
		entry[Def{Obj: obj}] = true
	}
	for _, b := range cfg.Blocks {
		rd.in[b] = make(defSet)
	}
	for d := range entry {
		rd.in[cfg.Entry()][d] = true
	}
	// Round-robin to fixpoint; block count is small (one function).
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			out := rd.transfer(b, rd.in[b])
			for _, s := range b.Succs {
				for d := range out {
					if !rd.in[s][d] {
						rd.in[s][d] = true
						changed = true
					}
				}
			}
		}
	}
	return rd
}

// transfer applies the block's gen/kill effects to in.
func (rd *ReachingDefs) transfer(b *Block, in defSet) defSet {
	out := make(defSet, len(in))
	for d := range in {
		out[d] = true
	}
	for _, n := range b.Nodes {
		rd.apply(n, out)
	}
	return out
}

func (rd *ReachingDefs) apply(n ast.Node, set defSet) {
	for _, obj := range DefinedObjects(rd.info, n) {
		for d := range set {
			if d.Obj == obj {
				delete(set, d)
			}
		}
		set[Def{Obj: obj, Node: n}] = true
	}
}

// At returns the definitions of obj that may reach the program point
// just before the node spanning pos, sorted by definition position
// (entry definitions first). It returns nil when pos is not inside the
// CFG's recorded nodes.
func (rd *ReachingDefs) At(pos token.Pos, obj types.Object) []Def {
	blk, idx := rd.cfg.BlockOf(pos)
	if blk == nil {
		return nil
	}
	set := make(defSet, len(rd.in[blk]))
	for d := range rd.in[blk] {
		set[d] = true
	}
	for _, n := range blk.Nodes[:idx] {
		rd.apply(n, set)
	}
	var out []Def
	for d := range set {
		if d.Obj == obj {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := token.NoPos, token.NoPos
		if out[i].Node != nil {
			pi = out[i].Node.Pos()
		}
		if out[j].Node != nil {
			pj = out[j].Node.Pos()
		}
		return pi < pj
	})
	return out
}

// DefinedObjects returns the variables (re)defined by one CFG node:
// assignment and declaration targets, inc/dec targets, range key/value
// bindings, and type-switch per-clause implicits. Writes through
// selectors, indexes, and dereferences are stores into existing memory,
// not definitions, and are deliberately excluded.
func DefinedObjects(info *types.Info, n ast.Node) []types.Object {
	var out []types.Object
	addIdent := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok {
			out = append(out, v)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			addIdent(lhs)
		}
	case *ast.IncDecStmt:
		addIdent(n.X)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						addIdent(name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if n.Key != nil {
			addIdent(n.Key)
		}
		if n.Value != nil {
			addIdent(n.Value)
		}
	case *ast.CaseClause:
		// Type switch: each clause may bind its own implicit object.
		if obj := info.Implicits[n]; obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

// entryObjects lists the variables live at function entry: parameters,
// results (named), and the receiver.
func entryObjects(fn ast.Node, info *types.Info) []types.Object {
	var fields []*ast.FieldList
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		fields = append(fields, fn.Recv, fn.Type.Params, fn.Type.Results)
	case *ast.FuncLit:
		fields = append(fields, fn.Type.Params, fn.Type.Results)
	}
	var out []types.Object
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

// IsFreshAlloc reports whether the definition's right-hand side for obj
// is a fresh allocation the function itself performed: &T{...},
// new(T), or a composite literal. Used to separate builders (which may
// freely mutate the object they are constructing) from consumers of a
// value that arrived from elsewhere.
func (d Def) IsFreshAlloc(info *types.Info) bool {
	as, ok := d.Node.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != d.Obj {
			continue
		}
		return isAllocExpr(as.Rhs[i])
	}
	return false
}

func isAllocExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new" || id.Name == "make"
		}
	}
	return false
}

// Aliases is the result of the alias/escape analysis rooted at one
// variable: see ComputeAliases.
type Aliases struct {
	// Set holds the root and every local that may alias it.
	Set map[types.Object]bool
	// Escaped reports that the aliased value flowed somewhere the
	// analysis cannot see: stored into a field, slice, map, channel, or
	// global, or returned. (Passing it as a call argument does not set
	// Escaped; callers decide how to treat calls.)
	Escaped bool
}

// ComputeAliases runs a flow-insensitive closure over the function
// body: starting from root, every `a := b` / `a = b` / `var a = b`
// whose right-hand side is (or parenthesizes) an alias adds the
// left-hand variable to the set, iterated to fixpoint. It
// over-approximates — an alias dead at the program point of interest is
// still in the set — which is the safe direction for immutability
// checking.
func ComputeAliases(body ast.Node, info *types.Info, root types.Object) *Aliases {
	a := &Aliases{Set: map[types.Object]bool{root: true}}
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	isAlias := func(e ast.Expr) bool {
		obj := objOf(e)
		return obj != nil && a.Set[obj]
	}
	pair := func(lhs, rhs ast.Expr) {
		if !isAlias(rhs) {
			return
		}
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := info.Defs[l]
			if obj == nil {
				obj = info.Uses[l]
			}
			if obj != nil {
				a.Set[obj] = true
				// Binding a package-level variable publishes the value
				// beyond the function.
				if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					a.Escaped = true
				}
			}
		default:
			// Stored through a field/index/deref: the value escapes the
			// local alias graph.
			a.Escaped = true
		}
	}
	for changed := true; changed; {
		before := len(a.Set)
		escaped := a.Escaped
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						pair(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						pair(name, n.Values[i])
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if isAlias(r) {
						a.Escaped = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isAlias(v) {
						a.Escaped = true
					}
				}
			case *ast.SendStmt:
				if isAlias(n.Value) {
					a.Escaped = true
				}
			}
			return true
		})
		changed = len(a.Set) != before || escaped != a.Escaped
	}
	return a
}
