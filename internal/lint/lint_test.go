package lint_test

import (
	"go/token"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"diacap/internal/lint"
	"diacap/internal/lint/analyzers"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

func load(t *testing.T, rel, importPath string) *lint.Package {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = lint.NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	abs, err := filepath.Abs(rel)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", rel, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("testdata must type-check: %v", terr)
	}
	return pkg
}

// TestMalformedIgnore: an ignore directive with no reason is itself a
// diagnostic, and the finding it meant to silence is still reported.
func TestMalformedIgnore(t *testing.T) {
	// The import path is made to satisfy FloatEq's Match: lint.Run is
	// called directly here, without linttest's Match bypass.
	pkg := load(t, "testdata/src/malformed", "dialint.test/internal/malformed")
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{analyzers.FloatEq})
	if err != nil {
		t.Fatal(err)
	}
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 2 || diags[0].Rule != "malformed-ignore" || diags[1].Rule != "float-eq" {
		t.Fatalf("want [malformed-ignore float-eq], got %v\n%s", rules, render(diags))
	}
	if !strings.Contains(diags[0].Message, "needs a reason") {
		t.Errorf("malformed-ignore message should demand a reason, got %q", diags[0].Message)
	}
	if diags[0].Pos.Line != diags[1].Pos.Line-1 {
		t.Errorf("directive at line %d should sit directly above the finding at line %d",
			diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

// TestSuppressionGrammar: digits are legal in rule names, while
// trailing junk and a missing dialint/ prefix make a directive
// unparseable — flagged, never silently inert.
func TestSuppressionGrammar(t *testing.T) {
	pkg := load(t, "testdata/src/suppress", "dialint.test/internal/suppress")
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{analyzers.FloatEq})
	if err != nil {
		t.Fatal(err)
	}
	var malformed, floatEq int
	for _, d := range diags {
		switch d.Rule {
		case "malformed-ignore":
			malformed++
			if !strings.Contains(d.Message, "unparseable") {
				t.Errorf("malformed diagnostic should say unparseable, got %q", d.Message)
			}
		case "float-eq":
			floatEq++
		default:
			t.Errorf("unexpected rule %s", d.Rule)
		}
	}
	// trailingJunk and missingPrefix are unparseable; the digits-named
	// rule parses fine (so no malformed) but suppresses a different
	// rule, leaving three live float-eq findings. eqSuppressed is clean.
	if malformed != 2 || floatEq != 3 {
		t.Errorf("got %d malformed-ignore and %d float-eq, want 2 and 3:\n%s",
			malformed, floatEq, render(diags))
	}
}

// TestObsFactConflict: the same metric name registered with two help
// strings in different packages is flagged on the later package.
func TestObsFactConflict(t *testing.T) {
	a := load(t, "testdata/src/obsconflict/a", "dialint.test/obsconflict/a")
	b := load(t, "testdata/src/obsconflict/b", "dialint.test/obsconflict/b")
	diags, err := lint.Run([]*lint.Package{a, b}, []*lint.Analyzer{analyzers.ObsPreregister})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the conflict diagnostic, got:\n%s", render(diags))
	}
	d := diags[0]
	if d.Rule != "obs-preregister" ||
		!strings.Contains(d.Message, "demo_conflict_total") ||
		!strings.Contains(d.Message, "registration order") {
		t.Errorf("unexpected conflict diagnostic: %s", d)
	}
	if filepath.Base(d.Pos.Filename) != "b.go" {
		t.Errorf("conflict should be reported on the later package, got %s", d.Pos.Filename)
	}
}

// TestSnapshotFactCrossesPackages: analyzing the real shard package
// exports shard.Snapshot as a published type; a dependent package that
// writes through a received *shard.Snapshot is then flagged, while a
// fresh local build stays clean.
func TestSnapshotFactCrossesPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the real shard package")
	}
	loaderOnce.Do(func() { loader, loaderErr = lint.NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	shardPkgs, err := loader.Load("diacap/internal/shard")
	if err != nil {
		t.Fatal(err)
	}
	consumer := load(t, "testdata/src/snapconsumer", "dialint.test/internal/snapconsumer")
	diags, err := lint.Run(append(shardPkgs, consumer), []*lint.Analyzer{analyzers.SnapshotImmutable})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the tamper diagnostic, got:\n%s", render(diags))
	}
	d := diags[0]
	if filepath.Base(d.Pos.Filename) != "snapconsumer.go" ||
		!strings.Contains(d.Message, "diacap/internal/shard.Snapshot") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Rule:    "float-eq",
		Message: "m",
	}
	if got, want := d.String(), "x.go:3:7: dialint/float-eq: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
