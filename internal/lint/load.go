package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// ImportPath is the package's import path ("diacap/internal/assign",
	// or a synthetic path for testdata packages).
	ImportPath string
	// Dir is the package's source directory.
	Dir  string
	Fset *token.FileSet
	// Files holds the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types and Info are the go/types results. Types is non-nil even
	// when TypeErrors is not empty (partial information).
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check failures; the runner reports them
	// as dialint/typecheck diagnostics.
	TypeErrors []error

	// moduleDeps counts module-internal transitive dependencies. Because
	// deps(A) strictly contains deps(B)∪{B} whenever A imports B, sorting
	// by this count is a valid topological order for fact flow.
	moduleDeps int

	// cfgs caches per-function control-flow graphs (Pass.FuncCFG) and
	// dirs the parsed //dialint directives (Pass.Directives), shared
	// across the analyzers run over this package.
	cfgs       map[ast.Node]*CFG
	dirs       []Directive
	dirsParsed bool
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Deps       []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Loader resolves and type-checks packages. Import resolution leans on
// the go command: one `go list -export -deps` run yields, for every
// dependency (standard library included), a compiler export-data file,
// which a stdlib go/importer lookup serves to go/types. Only the
// packages under analysis are parsed from source; everything they import
// is loaded from export data, so a whole-repo run stays fast and the
// engine stays free of third-party loaders.
type Loader struct {
	// RootDir is the module root (the directory holding go.mod).
	RootDir string
	// ModulePath is the module's declared path.
	ModulePath string

	fset    *token.FileSet
	listed  map[string]*listedPkg
	imp     types.Importer
	typeCfg func(pkg *Package) *types.Config
}

// NewLoader locates the module root at or above dir and prepares a
// loader. No packages are resolved yet; Load and LoadDir do that.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		RootDir:    root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		listed:     make(map[string]*listedPkg),
	}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// goList runs `go list -e -json -export -deps` for the patterns and
// merges the result into the loader's package index.
func (l *Loader) goList(patterns ...string) error {
	args := append([]string{"list", "-e", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.RootDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	dec := json.NewDecoder(out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if prev, ok := l.listed[p.ImportPath]; !ok || prev.Export == "" {
			cp := p
			l.listed[p.ImportPath] = &cp
		}
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return nil
}

// lookupExport serves compiler export data to the gc importer. Paths
// not seen in the initial go list run (possible for testdata-only
// imports) are resolved with a follow-up go list.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	p, ok := l.listed[path]
	if !ok || p.Export == "" {
		if err := l.goList(path); err != nil {
			return nil, err
		}
		p, ok = l.listed[path]
	}
	if !ok || p.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// Load resolves the patterns (e.g. "./...") relative to the module root
// and returns the matched module packages, parsed and type-checked, in
// dependency order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if err := l.goList(patterns...); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range l.listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, 0, len(p.GoFiles))
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		moduleDeps := 0
		for _, d := range p.Deps {
			if d == l.ModulePath || strings.HasPrefix(d, l.ModulePath+"/") {
				moduleDeps++
			}
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.moduleDeps = moduleDeps
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].moduleDeps != pkgs[j].moduleDeps {
			return pkgs[i].moduleDeps < pkgs[j].moduleDeps
		}
		return pkgs[i].ImportPath < pkgs[j].ImportPath
	})
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory outside the go
// tool's view — the analyzers' testdata packages live under testdata/,
// which `go build` ignores but which must still type-check for the
// analyzers to see through to go/types objects. importPath is the
// synthetic path given to the type-checked package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Dependencies of testdata packages resolve lazily via lookupExport;
	// seed the index with the module's own packages so diacap imports hit
	// the first run's export data.
	if len(l.listed) == 0 {
		if err := l.goList("./..."); err != nil {
			return nil, err
		}
	}
	return l.check(importPath, dir, files)
}

// check parses the files and type-checks them as one package.
func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	sort.Strings(filenames)
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset}
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", fn, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{
		Importer:    l.imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error duplicates the first entry of pkg.TypeErrors;
	// partial type information is still usable, so analysis proceeds and
	// the runner reports the errors as diagnostics.
	pkg.Types, _ = cfg.Check(importPath, l.fset, pkg.Files, pkg.Info)
	return pkg, nil
}
