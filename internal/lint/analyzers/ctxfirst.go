package analyzers

import (
	"go/ast"

	"diacap/internal/lint"
)

// CtxFirst enforces context.Context threading discipline on every
// function signature (declarations, literals, interface methods, and
// func-typed fields alike): a context parameter comes first, and a
// context is never stored in a struct field. The service and live layers
// cancel work through contexts on request and failover boundaries;
// a buried or struct-stashed context is how a cancelled request keeps
// computing an assignment nobody will read.
var CtxFirst = &lint.Analyzer{
	Name: "ctx-first",
	Doc:  "context.Context is the first parameter of any signature that takes one, and never a struct field",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *lint.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch t := n.(type) {
			case *ast.FuncType:
				if t.Params == nil {
					return true
				}
				pos := 0
				for _, field := range t.Params.List {
					isCtx := isNamed(info.Types[field.Type].Type, "context", "Context")
					names := len(field.Names)
					if names == 0 {
						names = 1 // unnamed parameter
					}
					if isCtx && pos > 0 {
						pass.Reportf(field.Pos(),
							"context.Context must be the first parameter so cancellation flows through every call boundary")
					}
					pos += names
				}
			case *ast.StructType:
				for _, field := range t.Fields.List {
					if isNamed(info.Types[field.Type].Type, "context", "Context") {
						pass.Reportf(field.Pos(),
							"context.Context stored in a struct outlives the request that created it; pass it as a call argument instead")
					}
				}
			}
			return true
		})
	}
	return nil
}
