package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"diacap/internal/lint"
)

// HotpathAlloc enforces the zero-allocation contract on functions
// annotated //dialint:hotpath. The perfkit kernels, the incremental
// evaluator's apply path, and the snapshot read path are all called
// per-event or per-cell at frequencies where a single heap allocation
// per call turns into GC pressure that shows up directly in the
// latency-bound experiments. An AllocsPerRun test pins the contract at
// runtime; this analyzer explains it at review time by pointing at the
// exact construct that allocates:
//
//   - make/new and map or slice composite literals (&T{...} included)
//   - append (growth allocates; flagged so the author documents retained
//     capacity with a suppression or hoists the buffer)
//   - closures (a FuncLit that captures variables lives on the heap)
//   - fmt.* calls, string concatenation, and string<->[]byte conversions
//   - arguments boxed into interface parameters
//
// Constructs inside a loop are prefixed "in a loop:" — those multiply.
// The analyzer is intraprocedural by design: a call to a non-annotated
// helper is not flagged here, the AllocsPerRun test owns the transitive
// contract.
var HotpathAlloc = &lint.Analyzer{
	Name:  "hotpath-alloc",
	Doc:   "functions annotated //dialint:hotpath must not contain allocating constructs: make, new, map/slice literals, append, closures, fmt calls, string building, or interface boxing",
	Match: matchInternal,
	Run:   runHotpathAlloc,
}

func runHotpathAlloc(pass *lint.Pass) error {
	info := pass.TypesInfo()
	for _, d := range pass.Directives() {
		if d.Name != "hotpath" || d.Fn == nil || d.Fn.Body == nil {
			continue
		}
		checkHotpathBody(pass, info, d.Fn)
	}
	return nil
}

func checkHotpathBody(pass *lint.Pass, info *types.Info, fn *ast.FuncDecl) {
	name := fn.Name.Name
	// loopDepth tracks enclosing for/range statements *within this
	// function* so findings inside them carry the multiplier prefix.
	var walk func(n ast.Node, inLoop bool)
	report := func(pos token.Pos, inLoop bool, format string, args ...any) {
		if inLoop {
			format = "in a loop: " + format
		}
		args = append(args, name)
		pass.Reportf(pos, format+" in //dialint:hotpath function %s", args...)
	}
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(sub ast.Node) bool {
			if sub == n {
				return true
			}
			switch sub := sub.(type) {
			case *ast.ForStmt:
				if sub.Init != nil {
					walk(sub.Init, inLoop)
				}
				if sub.Cond != nil {
					walk(sub.Cond, inLoop)
				}
				if sub.Post != nil {
					walk(sub.Post, inLoop)
				}
				walk(sub.Body, true)
				return false
			case *ast.RangeStmt:
				walk(sub.X, inLoop)
				walk(sub.Body, true)
				return false
			case *ast.FuncLit:
				report(sub.Pos(), inLoop, "closure allocation")
				return false // its body allocates into the closure's frame, not this one
			case *ast.CompositeLit:
				tv, ok := info.Types[sub]
				if ok && allocatingLitType(tv.Type) {
					report(sub.Pos(), inLoop, "%s composite literal allocates", litKind(tv.Type))
					return false
				}
			case *ast.UnaryExpr:
				if sub.Op == token.AND {
					if _, ok := ast.Unparen(sub.X).(*ast.CompositeLit); ok {
						report(sub.Pos(), inLoop, "&composite literal escapes to the heap")
						return false
					}
				}
			case *ast.BinaryExpr:
				if sub.Op == token.ADD {
					if tv, ok := info.Types[sub]; ok && isStringType(tv.Type) {
						report(sub.Pos(), inLoop, "string concatenation allocates")
					}
				}
			case *ast.CallExpr:
				checkHotpathCall(info, sub, inLoop, report)
			}
			return true
		})
	}
	walk(fn.Body, false)
}

func checkHotpathCall(info *types.Info, call *ast.CallExpr, inLoop bool, report func(pos token.Pos, inLoop bool, format string, args ...any)) {
	// Builtins and conversions first: they have no callee *types.Func.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id].(type) {
		case *types.Builtin:
			switch id.Name {
			case "make":
				report(call.Pos(), inLoop, "make allocates")
				return
			case "new":
				report(call.Pos(), inLoop, "new allocates")
				return
			case "append":
				report(call.Pos(), inLoop, "append may grow and allocate; document retained capacity with a reasoned ignore or hoist the buffer")
				return
			}
		case *types.TypeName:
			checkHotpathConversion(info, call, inLoop, report)
			return
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkHotpathConversion(info, call, inLoop, report)
		return
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), inLoop, "fmt.%s allocates (formatting state and boxed operands)", fn.Name())
		return
	}
	// Interface boxing: a concrete-typed argument assigned to an
	// interface parameter is heap-boxed at the call site.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type.Underlying()) {
			continue
		}
		if at.IsNil() {
			continue
		}
		report(arg.Pos(), inLoop, "argument boxed into interface parameter allocates")
	}
}

func checkHotpathConversion(info *types.Info, call *ast.CallExpr, inLoop bool, report func(pos token.Pos, inLoop bool, format string, args ...any)) {
	if len(call.Args) != 1 {
		return
	}
	dst, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	src, ok := info.Types[call.Args[0]]
	if !ok || src.Type == nil {
		return
	}
	dstT, srcT := dst.Type.Underlying(), src.Type.Underlying()
	if isStringType(dstT) && isByteSlice(srcT) {
		report(call.Pos(), inLoop, "[]byte→string conversion copies and allocates")
	}
	if isByteSlice(dstT) && isStringType(srcT) {
		report(call.Pos(), inLoop, "string→[]byte conversion copies and allocates")
	}
}

// callSignature returns the called function's signature, or nil for
// conversions and unresolvable callees.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// allocatingLitType reports whether a composite literal of t heap
// allocates by construction: maps always, slices always (backing
// array). Struct and array values are built in place.
func allocatingLitType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

func litKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "composite"
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
