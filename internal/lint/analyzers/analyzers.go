// Package analyzers holds dialint's domain rules. Each analyzer encodes
// one invariant the paper reproduction's claims depend on; DESIGN.md §11
// explains why each exists. The testdata/src/<rule> packages are the
// executable specification: every rule demonstrates at least one caught
// violation and one clean pass there.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"diacap/internal/lint"
)

// All returns every dialint analyzer, in the order cmd/dialint runs them.
// The syntactic rules come first; the CFG/dataflow-backed rules (added
// with the dataflow engine) follow.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		SeededRand,
		ObsPreregister,
		FloatEq,
		GoroutineOwner,
		CtxFirst,
		MutexValue,
		SnapshotImmutable,
		LockOrder,
		HotpathAlloc,
		MapIterOrder,
		Wallclock,
	}
}

// ByName resolves one analyzer.
func ByName(name string) (*lint.Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// matchInternal scopes a rule to the module's internal packages — where
// the paper's algorithms and serving layers live. Testdata suites bypass
// Match entirely, so synthetic packages still exercise Run.
func matchInternal(importPath string) bool {
	return strings.Contains(importPath, "/internal/") ||
		strings.HasSuffix(importPath, "/internal")
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and indirect calls through
// non-selector, non-identifier expressions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// recvNamed returns the named receiver type of fn, or nil for
// package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedType(sig.Recv().Type())
}

// enclosingFuncName walks the node stack outward and names the innermost
// enclosing function: a FuncDecl's name, or "" for a func literal or
// file scope.
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Name.Name
		case *ast.FuncLit:
			return ""
		}
	}
	return ""
}

// insideLoop reports whether any enclosing node is a for or range
// statement.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// anyFuncDeclNamed reports whether some enclosing FuncDecl's name
// satisfies pred.
func anyFuncDeclNamed(stack []ast.Node, pred func(string) bool) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok && pred(fd.Name.Name) {
			return true
		}
	}
	return false
}
