package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"diacap/internal/lint"
)

// SnapshotImmutable enforces the control plane's publication contract:
// a value handed to atomic.Pointer.Store is frozen at the publish
// point. Lock-free readers (shard.Plane.Current, the obs ring buffers)
// see the pointer without any happens-before edge beyond the store
// itself, so a single post-publish write is a data race AND a
// corruption of the exact-D / certified-bound story the snapshot
// carries. Two rules, both built on the CFG + dataflow layer:
//
//  1. Publisher rule (intraprocedural): after a Store(v) call, no
//     statement reachable in the function's CFG may write through v or
//     any local alias of v (a light alias closure catches `w := v`
//     renames).
//  2. Consumer rule (cross-package, fact-driven): packages that Store a
//     named type export it as a published-snapshot fact (types can also
//     opt in with a //dialint:published directive). Any write through a
//     value of a published type is flagged unless reaching definitions
//     prove the value is a fresh allocation this function built — the
//     builder may mutate, everyone downstream of a publish may not.
var SnapshotImmutable = &lint.Analyzer{
	Name:  "snapshot-immutable",
	Doc:   "values published via atomic.Pointer.Store are immutable: no reachable writes after the publish point, and no writes through published snapshot types outside their builder",
	Match: matchInternal,
	Run:   runSnapshotImmutable,
}

// publishedFact is the package fact: the fully-qualified named types
// this package publishes through atomic.Pointer.Store.
type publishedFact struct {
	Types []string
}

func runSnapshotImmutable(pass *lint.Pass) error {
	info := pass.TypesInfo()

	// Gather the published-type set: facts from dependency packages,
	// Store sites in this package, and //dialint:published directives.
	published := make(map[string]bool)
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(publishedFact); ok {
			for _, t := range f.Types {
				published[t] = true
			}
		}
	}
	// local accumulates everything this package publishes (exported as
	// the fact); localStored is the subset with a visible Store site,
	// whose builder functions the precise publisher rule already covers
	// — the consumer rule skips those to let pre-publish construction
	// helpers in the publishing package mutate freely.
	local := make(map[string]bool)
	localStored := make(map[string]bool)
	for _, d := range pass.Directives() {
		if d.Name != "published" || d.Type == nil {
			continue
		}
		if obj := info.Defs[d.Type.Name]; obj != nil {
			name := obj.Pkg().Path() + "." + obj.Name()
			local[name] = true
			published[name] = true
		}
	}

	type storeSite struct {
		call *ast.CallExpr
		fn   ast.Node // enclosing FuncDecl or FuncLit
	}
	var stores []storeSite
	for _, f := range pass.Files() {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			elem := atomicPointerStoreElem(info, call)
			if elem == nil {
				return
			}
			if named := namedType(elem); named != nil && named.Obj().Pkg() != nil {
				name := named.Obj().Pkg().Path() + "." + named.Obj().Name()
				local[name] = true
				localStored[name] = true
				published[name] = true
			}
			if fn := enclosingFunc(stack); fn != nil {
				stores = append(stores, storeSite{call: call, fn: fn})
			}
		})
	}
	names := make([]string, 0, len(local))
	for t := range local {
		names = append(names, t)
	}
	sort.Strings(names)
	if len(names) > 0 {
		pass.ExportPackageFact(publishedFact{Types: names})
	}

	reported := make(map[token.Pos]bool)

	// Publisher rule: no write through the stored value (or an alias)
	// may be reachable after the Store.
	for _, site := range stores {
		obj := storedObject(info, site.call)
		if obj == nil {
			continue // inline &T{...} or call result: nothing to alias
		}
		var body ast.Node
		switch fn := site.fn.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		aliases := lint.ComputeAliases(body, info, obj)
		cfg := pass.FuncCFG(site.fn)
		for _, n := range cfg.ReachableAfter(site.call.Pos()) {
			forEachWrite(info, n, func(root *ast.Ident, rootObj types.Object, pos token.Pos) {
				if !aliases.Set[rootObj] || reported[pos] {
					return
				}
				reported[pos] = true
				pass.Reportf(pos,
					"write to %s after it was published via atomic.Pointer.Store (%s): published snapshots are immutable; build fully, then publish",
					root.Name, pass.Fset().Position(site.call.Pos()))
			})
		}
	}

	// Consumer rule: writes through a value of a published type are only
	// legal in the builder that freshly allocated it.
	if len(published) == 0 {
		return nil
	}
	for _, f := range pass.Files() {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n.(type) {
			case *ast.AssignStmt, *ast.IncDecStmt:
			default:
				return
			}
			fn := enclosingFunc(stack)
			if fn == nil {
				return
			}
			forEachWrite(info, n, func(root *ast.Ident, rootObj types.Object, pos token.Pos) {
				named := namedType(rootObj.Type())
				if named == nil || named.Obj().Pkg() == nil || reported[pos] {
					return
				}
				name := named.Obj().Pkg().Path() + "." + named.Obj().Name()
				if !published[name] || localStored[name] {
					return
				}
				cfg := pass.FuncCFG(fn)
				rd := lint.NewReachingDefs(cfg, info)
				defs := rd.At(n.Pos(), rootObj)
				fresh := len(defs) > 0
				for _, d := range defs {
					if d.Node == nil || !d.IsFreshAlloc(info) {
						fresh = false
					}
				}
				if fresh {
					return
				}
				reported[pos] = true
				pass.Reportf(pos,
					"write through %s of published snapshot type %s: only the builder of a fresh snapshot may mutate it; received snapshots are immutable",
					root.Name, name)
			})
		})
	}
	return nil
}

// atomicPointerStoreElem returns T when call is x.Store(v) with x of
// type sync/atomic.Pointer[T] (possibly behind pointers), nil
// otherwise.
func atomicPointerStoreElem(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Store" || len(call.Args) != 1 {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	named := namedType(tv.Type)
	if named == nil {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || obj.Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	return args.At(0)
}

// storedObject resolves the variable whose value is being published:
// Store(v) yields v's object, Store(&v) yields v's.
func storedObject(info *types.Info, call *ast.CallExpr) types.Object {
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// forEachWrite invokes fn for every store-through write in node n: an
// assignment or inc/dec whose left-hand side is a selector, index, or
// dereference chain rooted at an identifier. Plain `x = ...` rebinding
// is not a write through x and is skipped.
func forEachWrite(info *types.Info, n ast.Node, fn func(root *ast.Ident, obj types.Object, pos token.Pos)) {
	report := func(lhs ast.Expr) {
		e := ast.Unparen(lhs)
		if _, isIdent := e.(*ast.Ident); isIdent {
			return // rebinding, not mutation
		}
		root := rootIdent(e)
		if root == nil {
			return
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		fn(root, obj, lhs.Pos())
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			report(lhs)
		}
	case *ast.IncDecStmt:
		report(n.X)
	default:
		// CFG nodes can be composite (an if condition, a range head);
		// writes only live in the two statement forms above, but those
		// may be nested (e.g. inside a range body handled elsewhere), so
		// scan conservatively.
		ast.Inspect(n, func(sub ast.Node) bool {
			switch sub := sub.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				for _, lhs := range sub.Lhs {
					report(lhs)
				}
			case *ast.IncDecStmt:
				report(sub.X)
			}
			return true
		})
	}
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier: p.shards[i].summary → p. Returns nil when the base is not
// an identifier (a call result, for example).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// enclosingFunc returns the innermost enclosing function node (FuncDecl
// or FuncLit) from a WalkStack stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
