// Package ctxfirst exercises dialint/ctx-first: a context parameter
// comes first in every signature, and contexts never live in structs.
package ctxfirst

import "context"

func solve(ctx context.Context, n int) int { // clean: context first
	_ = ctx
	return n
}

func buried(n int, ctx context.Context) { // want "must be the first parameter"
	_ = ctx
	_ = n
}

func literalBuried() {
	fn := func(name string, ctx context.Context) { _, _ = name, ctx } // want "must be the first parameter"
	fn("x", context.Background())
}

type handler interface {
	Handle(ctx context.Context, req string) error    // clean
	Flush(deadline int64, ctx context.Context) error // want "must be the first parameter"
}

type request struct {
	id  int
	ctx context.Context // want "stored in a struct outlives the request"
}

func noContext(a, b int) int { return a + b } // clean: no context at all
