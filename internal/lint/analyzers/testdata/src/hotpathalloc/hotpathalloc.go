// Package hotpathalloc exercises dialint/hotpath-alloc: functions
// annotated //dialint:hotpath must not contain allocating constructs.
package hotpathalloc

import "fmt"

//dialint:hotpath
func pureKernel(a, b []float64) float64 {
	best := 0.0
	for i := range a {
		if v := a[i] + b[i]; v > best {
			best = v
		}
	}
	return best // clean: loads, compares, and arithmetic only
}

func notAnnotated(n int) []int {
	return make([]int, n) // clean: no directive, no contract
}

//dialint:hotpath
func makes(n int) []int {
	return make([]int, n) // want "make allocates"
}

//dialint:hotpath
func news() *int {
	return new(int) // want "new allocates"
}

//dialint:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want "slice composite literal"
}

//dialint:hotpath
func mapLit() map[string]int {
	return map[string]int{} // want "map composite literal"
}

type point struct{ x, y int }

//dialint:hotpath
func ptrLit() *point {
	return &point{x: 1} // want "composite literal escapes to the heap"
}

//dialint:hotpath
func structValue() point {
	return point{x: 1, y: 2} // clean: struct value, built in place
}

//dialint:hotpath
func arrayValue() [4]int {
	return [4]int{1, 2, 3, 4} // clean: array value, built in place
}

//dialint:hotpath
func closure(xs []int) func() int {
	return func() int { return len(xs) } // want "closure allocation"
}

//dialint:hotpath
func appendsInLoop(dst, src []int) []int {
	for _, v := range src {
		dst = append(dst, v) // want "in a loop: append"
	}
	return dst
}

//dialint:hotpath
func appendsOnce(dst []int, v int) []int {
	return append(dst, v) // want "append may grow"
}

//dialint:hotpath
func formats(v int) string {
	return fmt.Sprintf("%d", v) // want "fmt.Sprintf allocates"
}

//dialint:hotpath
func concats(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//dialint:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want "conversion copies and allocates"
}

//dialint:hotpath
func toString(b []byte) string {
	return string(b) // want "conversion copies and allocates"
}

func sink(v any) { _ = v }

//dialint:hotpath
func boxes(n int) {
	sink(n) // want "boxed into interface parameter"
}

//dialint:hotpath
func passesInterface(v any) {
	sink(v) // clean: already an interface, no boxing at this site
}

//dialint:hotpath
func retained(dst []float64, v float64) []float64 {
	//lint:ignore dialint/hotpath-alloc caller retains capacity; the AllocsPerRun test pins steady-state zero
	return append(dst, v)
}
