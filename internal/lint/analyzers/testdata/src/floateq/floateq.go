// Package floateq exercises dialint/float-eq: exact ==/!= between
// non-constant floats is a violation; constant sentinels, the NaN idiom,
// and approved exact-eq helpers are clean.
package floateq

import "math"

const eps = 1e-9

func violations(a, b float64, xs []float64) bool {
	if a == b { // want "== on float64 values"
		return true
	}
	if xs[0] != xs[1] { // want "!= on float64 values"
		return false
	}
	return a*2 == b+1 // want "== on float64 values"
}

func clean(a, b float64) bool {
	if a == 0 { // clean: comparison against a compile-time constant
		return true
	}
	if a != a { // clean: the deliberate NaN test
		return false
	}
	return math.Abs(a-b) <= eps // clean: epsilon comparison
}

func dedupExact(sorted []float64) []float64 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] { // clean: *Exact helper approved for bit-exact compares
			out = append(out, v)
		}
	}
	return out
}

func bitsEqual(a, b float64) bool {
	return a == b // clean: approved exact-eq helper name
}

func suppressedCompare(a, b float64) bool {
	//lint:ignore dialint/float-eq demo: stored values are bit-identical by construction
	return a == b
}
