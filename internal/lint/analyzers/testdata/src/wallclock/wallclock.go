// Package wallclock exercises dialint/wallclock-determinism: replay
// code must not read the wall clock except to feed observability sinks.
package wallclock

import "time"

// record is this package's observability sink: wall-clock durations may
// flow into it, and nowhere else.
//
//dialint:wallclock-ok
func record(seconds float64) { _ = seconds }

var lastTick time.Time

func leaksIntoState() {
	lastTick = time.Now() // want "time.Now"
}

func returnsClock() time.Time {
	return time.Now() // want "time.Now"
}

func comparesClock(deadline time.Time) bool {
	return time.Now().After(deadline) // want "time.Now"
}

func sinceIntoLogic(start time.Time) bool {
	return time.Since(start) > time.Second // want "time.Since"
}

func work() {}

func timesOneCall() {
	start := time.Now() // clean: the only use of start is the Since below
	work()
	record(time.Since(start).Seconds()) // clean: flows into the wallclock-ok sink
}

var someEpoch time.Time

func sinkDirect() {
	record(time.Since(someEpoch).Seconds()) // clean: method chain into the sink
}

func startLeaksToo() {
	start := time.Now() // want "time.Now"
	record(time.Since(start).Seconds())
	lastTick = start
}

//dialint:wallclock-ok
func annotatedSink() float64 {
	return time.Since(someEpoch).Seconds() // clean: the enclosing function is the sink
}

func suppressed() time.Time {
	//lint:ignore dialint/wallclock-determinism testdata demonstrates a reasoned suppression
	return time.Now()
}
