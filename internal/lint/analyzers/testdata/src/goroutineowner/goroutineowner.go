// Package goroutineowner exercises dialint/goroutine-owner: every go
// statement must be WaitGroup-joined or stop-channel-cancellable.
package goroutineowner

import "sync"

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
	done chan struct{}
}

func (w *worker) leaky() {
	go func() { // want "not tied to an owner lifecycle"
		for {
			process()
		}
	}()
}

func (w *worker) joined() {
	w.wg.Add(1)
	go func() { // clean: WaitGroup.Done ties it to Wait
		defer w.wg.Done()
		process()
	}()
}

func (w *worker) cancellable() {
	go func() { // clean: waits on a stop channel
		for {
			select {
			case <-w.stop:
				return
			default:
				process()
			}
		}
	}()
}

func (w *worker) signalling() {
	go func() { // clean: closes its done channel on exit
		defer close(w.done)
		process()
	}()
}

func (w *worker) namedLoop() {
	go w.run() // clean: run's body waits on the stop channel
}

func (w *worker) run() {
	<-w.stop
}

func indirect(fn func()) {
	go fn() // want "indirect call"
}

func external() {
	var mu sync.Mutex
	go mu.Unlock() // want "from outside the package"
}

func process() {}
