// Package obspreregister exercises dialint/obs-preregister: metric names
// must be package-level consts, and instrument construction stays out of
// loops except inside registration functions.
package obspreregister

import "diacap/internal/obs"

const (
	nRequests = "demo_requests_total"
	hRequests = "Requests handled."
	nWorkers  = "demo_workers"
)

func constName(reg *obs.Registry) {
	reg.Counter(nRequests, hRequests).Inc() // clean: package-level const
}

func inlineLiteral(reg *obs.Registry) {
	reg.Counter("demo_inline_total", "Inline.").Inc() // want "must be a package-level const, not an inline literal"
}

func dynamicName(reg *obs.Registry, shard string) {
	reg.Gauge("demo_"+shard, "Dynamic.").Set(1) // want "not a compile-time constant"
}

func localConst(reg *obs.Registry) {
	const name = "demo_local_total"
	reg.Counter(name, "Local.").Inc() // want "must be declared as a package-level const"
}

func hotLoop(reg *obs.Registry, stages []string) {
	for _, s := range stages {
		reg.Gauge(nWorkers, "Workers.", obs.L("stage", s)).Set(1) // want "Registry.Gauge inside a loop"
	}
}

func registerStages(reg *obs.Registry, stages []string) {
	for _, s := range stages {
		reg.Gauge(nWorkers, "Workers.", obs.L("stage", s)).Set(0) // clean: register* functions preregister label sets
	}
}

// PreregisterAll is exempt by name, like registerStages.
func PreregisterAll(reg *obs.Registry, stages []string) {
	for _, s := range stages {
		reg.Counter(nRequests, hRequests, obs.L("stage", s)).Add(0) // clean
	}
}

// Journal names follow the same const discipline as metric names.

const jFailover = "failover"

func constJournal(rec *obs.Recorder) {
	rec.Journal(jFailover, 0).Record("kill", "") // clean: package-level const
}

func inlineJournal(rec *obs.Recorder) {
	rec.Journal("epoch", 0).Record("publish", "") // want "journal name \"epoch\" must be a package-level const, not an inline literal"
}

func dynamicJournal(rec *obs.Recorder, shard string) {
	rec.Journal("ops-"+shard, 0).Record("execute", "") // want "journal name passed to Recorder.Journal is not a compile-time constant"
}

func localJournal(rec *obs.Recorder) {
	const name = "suppressed"
	rec.Journal(name, 0).Record("gain", "") // want "journal name \"suppressed\" must be declared as a package-level const"
}

func journalPerEvent(rec *obs.Recorder, kills []int) {
	for range kills {
		rec.Journal(jFailover, 0).Record("kill", "") // want "Recorder.Journal inside a loop"
	}
}

func registerJournals(rec *obs.Recorder) {
	for i := 0; i < 2; i++ {
		rec.Journal(jFailover, 0) // clean: register* functions resolve handles up front
	}
}
