// Package mutexvalue exercises dialint/mutex-value: lock-bearing types
// move by pointer in signatures, never by value.
package mutexvalue

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu    sync.Mutex
	count int
}

type viaPointer struct {
	mu *sync.Mutex // pointer field: the lock is shared, not copied
	n  int
}

type counters struct {
	hits atomic.Int64
}

func byValue(g guarded) int { // want "parameter copies a value containing sync.Mutex"
	return g.count
}

func byPointer(g *guarded) int { // clean: pointer receiver of the lock
	return g.count
}

func (g guarded) valueReceiver() int { // want "receiver copies a value containing sync.Mutex"
	return g.count
}

func (g *guarded) pointerReceiver() int { // clean
	return g.count
}

func returned() guarded { // want "result copies a value containing sync.Mutex"
	return guarded{}
}

func pointerField(v viaPointer) int { // clean: pointer breaks value embedding
	return v.n
}

func waitGroupValue(wg sync.WaitGroup) { // want "parameter copies a value containing sync.WaitGroup"
	wg.Wait()
}

func atomicValue(c counters) int64 { // want "parameter copies a value containing atomic.Int64"
	return c.hits.Load()
}

func embeddedArray(banks [4]guarded) { // want "parameter copies a value containing sync.Mutex"
	_ = banks
}
