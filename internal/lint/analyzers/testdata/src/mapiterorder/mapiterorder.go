// Package mapiterorder exercises dialint/map-iter-order: ranging over a
// map in fingerprinted packages leaks random iteration order unless the
// body is a recognized order-safe shape.
package mapiterorder

import "sort"

func accumulatesUnsorted(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is random"
		out = append(out, v)
	}
	return out
}

func sortedStringKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // clean: key extraction with a reachable sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedIntKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // clean: sort.Slice over the collected keys
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func extractedButNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is random"
		keys = append(keys, k)
	}
	return keys
}

func sortedOnlyOnSomePath(m map[string]int, skip bool) []string {
	var keys []string
	for k := range m { // clean: a sort is reachable after the loop (may-analysis)
		keys = append(keys, k)
	}
	if !skip {
		sort.Strings(keys)
	}
	return keys
}

func clearsEverything(m map[string]int) {
	for k := range m { // clean: delete-only body, order-independent by spec
		delete(m, k)
	}
}

func deletesFromOtherMap(m, other map[string]int) {
	for k := range m { // want "map iteration order is random"
		delete(other, k)
	}
}

func maxFoldSuppressed(m map[int]float64) float64 {
	best := 0.0
	//lint:ignore dialint/map-iter-order pure max fold; max is commutative so order cannot reach the result
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func rangesSlice(xs []int) int {
	n := 0
	for range xs { // clean: slices iterate in index order
		n++
	}
	return n
}
