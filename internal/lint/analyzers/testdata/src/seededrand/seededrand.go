// Package seededrand exercises dialint/seeded-rand: package-level
// math/rand draws are violations; seeded constructors and methods on an
// injected *rand.Rand are clean.
package seededrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraws() (int, float64) {
	n := rand.Intn(10)                 // want "call to global math/rand.Intn"
	x := rand.Float64()                // want "call to global math/rand.Float64"
	rand.Shuffle(3, func(i, j int) {}) // want "call to global math/rand.Shuffle"
	return n, x
}

func globalDrawsV2() int {
	return randv2.IntN(10) // want "call to global math/rand/v2.IntN"
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))      // clean: approved constructors
	z := rand.NewZipf(rng, 1.2, 1, 100)        // clean: NewZipf builds on an injected rng
	return rng.Float64() + float64(z.Uint64()) // clean: methods on injected generators
}

func seededV2(s1, s2 uint64) uint64 {
	pcg := randv2.New(randv2.NewPCG(s1, s2)) // clean: v2 seeded constructors
	return pcg.Uint64()
}

func suppressed() int {
	//lint:ignore dialint/seeded-rand demo: a reasoned suppression silences the rule
	return rand.Int()
}
