// Package lockorder exercises dialint/lock-order: the global
// acquisition graph must be acyclic. Each scenario uses its own mutex
// set so the edges cannot contaminate one another.
package lockorder

import "sync"

// Scenario 1: the ABBA cycle. Both sides are reported — each edge
// closes the cycle the other opened.

type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }

var ga alpha
var gb beta

func abOrder() {
	ga.mu.Lock()
	gb.mu.Lock() // want "closes a lock-order cycle"
	gb.mu.Unlock()
	ga.mu.Unlock()
}

func baOrder() {
	gb.mu.Lock()
	ga.mu.Lock() // want "closes a lock-order cycle"
	ga.mu.Unlock()
	gb.mu.Unlock()
}

// Scenario 2: a deferred unlock keeps the lock held, but a consistent
// one-way order is clean.

type delta struct{ mu sync.RWMutex }
type epsilon struct{ mu sync.Mutex }

var gd delta
var ge epsilon

func deferredHold() {
	gd.mu.RLock()
	defer gd.mu.RUnlock()
	ge.mu.Lock() // clean: delta.mu→epsilon.mu has no reverse edge
	ge.mu.Unlock()
}

// Scenario 3: releasing before the next acquisition creates no edge, so
// opposite sequential orders are clean.

type fmu struct{ mu sync.Mutex }
type gmu struct{ mu sync.Mutex }

var gf fmu
var gg gmu

func fThenG() {
	gf.mu.Lock()
	gf.mu.Unlock()
	gg.mu.Lock() // clean: fmu.mu was released first
	gg.mu.Unlock()
}

func gThenF() {
	gg.mu.Lock()
	gg.mu.Unlock()
	gf.mu.Lock() // clean: no overlap, no edge
	gf.mu.Unlock()
}

// Scenario 4: two instances of one type are one identity; the self-edge
// is deliberately not reported (index-ordered sibling locking is legal).

type shard struct{ mu sync.Mutex }

func lockPair(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // clean: self-edge shard.mu→shard.mu is skipped
	b.mu.Unlock()
	a.mu.Unlock()
}

// Scenario 5: a suppressed side of a cycle. The reverse side still
// reports.

type iota2 struct{ mu sync.Mutex }
type kappa struct{ mu sync.Mutex }

var gi iota2
var gk kappa

func ikOrder() {
	gi.mu.Lock()
	//lint:ignore dialint/lock-order testdata demonstrates a reasoned suppression of one side
	gk.mu.Lock()
	gk.mu.Unlock()
	gi.mu.Unlock()
}

func kiOrder() {
	gk.mu.Lock()
	gi.mu.Lock() // want "closes a lock-order cycle"
	gi.mu.Unlock()
	gk.mu.Unlock()
}

// Scenario 6: package-level mutex variables get pkg.var identities and
// participate like field mutexes.

var tableMu sync.Mutex
var cacheMu sync.Mutex

func tableThenCache() {
	tableMu.Lock()
	defer tableMu.Unlock()
	cacheMu.Lock() // clean: one-way order only
	defer cacheMu.Unlock()
}
