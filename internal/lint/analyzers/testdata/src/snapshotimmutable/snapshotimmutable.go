// Package snapshotimmutable exercises dialint/snapshot-immutable: a
// value handed to atomic.Pointer.Store is frozen, and writes through
// published types are only legal on freshly built values.
package snapshotimmutable

import "sync/atomic"

// Snapshot is published through the plane's atomic pointer below; the
// Store site makes it a published type without any directive.
type Snapshot struct {
	Epoch      uint64
	D          float64
	Assignment []int
}

type plane struct {
	snap atomic.Pointer[Snapshot]
}

func (p *plane) publishClean(n int) {
	s := &Snapshot{Epoch: 1, Assignment: make([]int, n)}
	s.D = 3 // clean: the write precedes the publish
	p.snap.Store(s)
}

func (p *plane) publishThenWrite() {
	s := &Snapshot{}
	p.snap.Store(s)
	s.D = 4 // want "after it was published"
}

func (p *plane) publishThenAliasWrite() {
	s := &Snapshot{}
	w := s
	p.snap.Store(s)
	w.Epoch = 9 // want "after it was published"
}

func (p *plane) publishInBranch(cold bool) {
	s := &Snapshot{Epoch: 2}
	if cold {
		s.D = 1 // clean: runs before the store on every path
	}
	p.snap.Store(s)
}

func (p *plane) publishInLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		s := &Snapshot{}
		p.snap.Store(s)
		s.Epoch++ // want "after it was published"
	}
}

func (p *plane) publishSuppressed() {
	s := &Snapshot{}
	p.snap.Store(s)
	//lint:ignore dialint/snapshot-immutable testdata demonstrates a reasoned suppression
	s.D = 1
}

// View opts into the published set by directive: no Store in this
// package targets it, so the cross-package consumer rule applies.
//
//dialint:published
type View struct {
	N int
}

func mutateReceived(v *View) {
	v.N++ // want "published snapshot type"
}

func overwriteReceived(v *View, n int) {
	v.N = n // want "published snapshot type"
}

func buildFresh(n int) *View {
	v := &View{}
	v.N = n // clean: reaching definition is a fresh allocation
	return v
}

func rebind(v *View) *View {
	v = &View{} // clean: rebinding the variable, not writing through it
	return v
}

func freshValue() View {
	v := View{}
	v.N = 7 // clean: fresh composite value
	return v
}
