package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"diacap/internal/lint"
)

// stopChanRE names channels whose receive (or close) ties a goroutine to
// an owner's lifecycle.
var stopChanRE = regexp.MustCompile(`(?i)(done|stop|quit|shutdown|closed)`)

// GoroutineOwner requires every goroutine launched in internal/live and
// internal/scale to be tied to an owner's lifecycle: its body (or, for a
// named same-package function, that function's body) must call
// (*sync.WaitGroup).Done, close a done-channel, or wait on a
// stop/done/quit channel. The live cluster's Kill and Failover paths
// assume every worker is joinable or cancellable — an untracked
// goroutine holding a connection is precisely the leak that turns a
// clean failover test into a flaky one.
var GoroutineOwner = &lint.Analyzer{
	Name: "goroutine-owner",
	Doc:  "every go statement in internal/live and internal/scale must be WaitGroup-joined or stop-channel-cancellable",
	Match: func(importPath string) bool {
		return strings.HasSuffix(importPath, "internal/live") ||
			strings.HasSuffix(importPath, "internal/scale")
	},
	Run: runGoroutineOwner,
}

func runGoroutineOwner(pass *lint.Pass) error {
	info := pass.TypesInfo()

	// Index this package's function declarations by object, so
	// `go s.acceptLoop()` can be checked against acceptLoop's body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var what string
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body, what = fun.Body, "function literal"
			default:
				fn := calleeFunc(info, g.Call)
				if fn == nil {
					pass.Reportf(g.Pos(), "goroutine launches an indirect call; dialint cannot see its lifecycle — launch a named function or literal tied to a WaitGroup or stop channel")
					return true
				}
				decl, ok := decls[fn]
				if !ok {
					pass.Reportf(g.Pos(), "goroutine launches %s.%s from outside the package; wrap it in a literal that joins an owner WaitGroup or stop channel", fn.Pkg().Name(), fn.Name())
					return true
				}
				body, what = decl.Body, fn.Name()
			}
			if body == nil || !lifecycleTied(info, body) {
				pass.Reportf(g.Pos(),
					"goroutine (%s) is not tied to an owner lifecycle: no WaitGroup.Done, done-channel close, or stop-channel wait — Kill/Failover cannot join or cancel it", what)
			}
			return true
		})
	}
	return nil
}

// lifecycleTied scans a goroutine body for any accepted ownership signal.
func lifecycleTied(info *types.Info, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, e); fn != nil {
				if fn.Name() == "Done" && isNamed(recvOf(fn), "sync", "WaitGroup") {
					tied = true
					return false
				}
			}
			// close(x.done) — the goroutine signals its own completion.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(e.Args) == 1 {
					if stopChanRE.MatchString(lastName(e.Args[0])) {
						tied = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			// <-x.done / <-ctx.Done() / <-stop, directly or in a select.
			if e.Op == token.ARROW && stopChanRE.MatchString(lastName(e.X)) {
				tied = true
				return false
			}
		}
		return true
	})
	return tied
}

func recvOf(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// lastName extracts the trailing identifier of an expression for name
// matching: c.done → "done", ctx.Done() → "Done", stop → "stop".
func lastName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.CallExpr:
		return lastName(x.Fun)
	}
	return ""
}
