package analyzers

import (
	"go/ast"
	"go/types"

	"diacap/internal/lint"
)

// MutexValue flags lock-bearing types passed, received, or returned by
// value. A copied sync.Mutex is a fork of the lock: both copies guard
// nothing, and the race only surfaces under churn — exactly when the
// live cluster's Kill/Failover paths exercise the locks hardest. Unlike
// go vet's copylocks (which checks assignments), this rule checks
// signatures, where the copy is a design decision rather than a slip.
var MutexValue = &lint.Analyzer{
	Name: "mutex-value",
	Doc:  "types containing sync locks (Mutex, RWMutex, WaitGroup, Once, Cond, Map, Pool, atomics) must move by pointer in signatures",
	Run:  runMutexValue,
}

// syncLockTypes are the sync types whose by-value copy is a bug.
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Map":       true,
	"Pool":      true,
}

func runMutexValue(pass *lint.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkFieldList(pass, info, fd.Recv, "receiver")
			if fd.Type.Params != nil {
				checkFieldList(pass, info, fd.Type.Params, "parameter")
			}
			if fd.Type.Results != nil {
				checkFieldList(pass, info, fd.Type.Results, "result")
			}
		}
	}
	return nil
}

func checkFieldList(pass *lint.Pass, info *types.Info, fl *ast.FieldList, role string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if lock := containsLock(t, make(map[types.Type]bool)); lock != "" {
			pass.Reportf(field.Pos(),
				"%s copies a value containing %s: both copies stop guarding the same state; pass *%s instead",
				role, lock, types.TypeString(t, types.RelativeTo(pass.TypesPkg())))
		}
	}
}

// containsLock reports the first sync lock type reachable through value
// embedding (struct fields and array elements), or "".
func containsLock(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	// A pointer (or any reference type) breaks value embedding: the lock
	// behind it is shared, not copied.
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return ""
	}
	if n := namedType(t); n != nil {
		obj := n.Obj()
		if obj.Pkg() != nil {
			if obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
				return "sync." + obj.Name()
			}
			if obj.Pkg().Path() == "sync/atomic" {
				// atomic.Int64 and friends embed noCopy for the same reason.
				return "atomic." + obj.Name()
			}
		}
		return containsLock(n.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lock := containsLock(u.Field(i).Type(), seen); lock != "" {
				return lock
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return ""
}
