package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"diacap/internal/lint"
)

// LockOrder builds the repository-wide lock-acquisition graph and
// reports cycles. The shard plane, the live cluster, and the service
// layer each own mutexes, and nothing but convention stops a call chain
// from acquiring them in opposite orders on two paths — the classic
// ABBA deadlock that only fires under production interleavings. Per
// function, a forward may-held dataflow over the CFG tracks which lock
// identities are held at each acquisition site (defer'd unlocks release
// at exit, so they correctly keep the lock held for the rest of the
// function); each "acquire B while holding A" pair becomes an A→B edge.
// Edges are exported as package facts, the graph accumulates across
// packages in dependency order, and an edge that closes a cycle is
// reported at its acquisition site together with the site of the
// reversed edge.
//
// Lock identity is type-scoped (pkg.Type.field for field mutexes,
// pkg.var for package-level ones): two instances of the same field
// count as one identity, so self-edges are deliberately not reported
// (locking two different shards' mutexes in index order is legal and
// common); function-local mutexes are untracked.
var LockOrder = &lint.Analyzer{
	Name:  "lock-order",
	Doc:   "mutex acquisition order must be globally consistent: acquiring B while holding A and A while holding B is a potential deadlock, reported with both acquisition sites",
	Match: matchInternal,
	Run:   runLockOrder,
}

// lockEdge is one "To acquired while From was held" observation.
type lockEdge struct {
	From, To string
	// FromSite and ToSite are "file:line" strings of the two
	// acquisitions (ToSite is where the edge was observed).
	FromSite, ToSite string
}

// lockFact is the package fact: this package's acquisition edges.
type lockFact struct {
	Edges []lockEdge
}

// lockOp is one Lock/Unlock call found in a CFG node.
type lockOp struct {
	ident   string
	acquire bool
	pos     token.Pos
}

func runLockOrder(pass *lint.Pass) error {
	info := pass.TypesInfo()

	// Collect this package's edges: one may-held dataflow per function.
	type edgeSite struct {
		edge lockEdge
		pos  token.Pos
	}
	var edges []edgeSite
	seenEdge := make(map[lockEdge]bool)
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cfg := pass.FuncCFG(fd)
			for _, e := range heldEdges(cfg, info, pass.Fset()) {
				key := e.edge
				if !seenEdge[key] {
					seenEdge[key] = true
					edges = append(edges, edgeSite{edge: e.edge, pos: e.pos})
				}
			}
		}
	}

	// The global graph: edges from every already-analyzed package plus
	// this one. Cross-package sites are carried as strings.
	graph := make(map[string][]lockEdge)
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(lockFact); ok {
			for _, e := range f.Edges {
				graph[e.From] = append(graph[e.From], e)
			}
		}
	}
	for _, e := range edges {
		graph[e.edge.From] = append(graph[e.edge.From], e.edge)
	}

	// Report each local edge whose target can reach its source: the
	// returned path closes the cycle and names the reversing site.
	for _, e := range edges {
		if path := lockPath(graph, e.edge.To, e.edge.From); path != nil {
			var steps []string
			for _, pe := range path {
				steps = append(steps, fmt.Sprintf("%s→%s (at %s)", pe.From, pe.To, pe.ToSite))
			}
			pass.Reportf(e.pos,
				"acquiring %s while holding %s (held since %s) closes a lock-order cycle: %s; acquire these locks in one global order",
				e.edge.To, e.edge.From, e.edge.FromSite, strings.Join(steps, ", "))
		}
	}

	sorted := make([]lockEdge, 0, len(edges))
	for _, e := range edges {
		sorted = append(sorted, e.edge)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].From != sorted[j].From {
			return sorted[i].From < sorted[j].From
		}
		return sorted[i].To < sorted[j].To
	})
	if len(sorted) > 0 {
		pass.ExportPackageFact(lockFact{Edges: sorted})
	}
	return nil
}

// heldEdges runs the may-held forward dataflow over one function and
// returns the acquisition edges it observes.
func heldEdges(cfg *lint.CFG, info *types.Info, fset *token.FileSet) []struct {
	edge lockEdge
	pos  token.Pos
} {
	// held maps lock identity → site string of the acquisition that
	// (first, deterministically smallest) put it there.
	type held map[string]string
	in := make([]held, len(cfg.Blocks))
	for i := range in {
		in[i] = make(held)
	}
	var out []struct {
		edge lockEdge
		pos  token.Pos
	}
	emit := func(h held, op lockOp) {
		site := fset.Position(op.pos).String()
		if !op.acquire {
			delete(h, op.ident)
			return
		}
		for from, fromSite := range h {
			if from == op.ident {
				continue
			}
			out = append(out, struct {
				edge lockEdge
				pos  token.Pos
			}{
				edge: lockEdge{From: from, To: op.ident, FromSite: trimSite(fromSite), ToSite: trimSite(site)},
				pos:  op.pos,
			})
		}
		h[op.ident] = site
	}
	// Fixpoint: iterate until the in-sets stop growing. The emit of
	// edges happens on every pass but out is rebuilt each round, so only
	// the final round's edges are returned.
	for changed := true; changed; {
		changed = false
		out = out[:0]
		for _, b := range cfg.Blocks {
			h := make(held, len(in[b.Index]))
			for k, v := range in[b.Index] {
				h[k] = v
			}
			for _, n := range b.Nodes {
				for _, op := range lockOpsIn(info, n) {
					emit(h, op)
				}
			}
			for _, s := range b.Succs {
				for k, v := range h {
					prev, ok := in[s.Index][k]
					if !ok || v < prev {
						in[s.Index][k] = v
						changed = true
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// trimSite keeps a site string readable in diagnostics: strip any
// directory prefix, keep file:line:col.
func trimSite(site string) string {
	if i := strings.LastIndexByte(site, '/'); i >= 0 {
		return site[i+1:]
	}
	return site
}

// lockOpsIn extracts the Lock/RLock/Unlock/RUnlock calls performed by
// one CFG node, in source order. Deferred unlocks are skipped — they
// run at function exit, so the lock stays held for edge collection —
// and FuncLit bodies are opaque (they have their own CFG).
func lockOpsIn(info *types.Info, n ast.Node) []lockOp {
	var ops []lockOp
	if ds, ok := n.(*ast.DeferStmt); ok {
		_ = ds
		return nil
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		switch sub := sub.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(info, sub)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			var acquire bool
			switch fn.Name() {
			case "Lock", "RLock":
				acquire = true
			case "Unlock", "RUnlock":
				acquire = false
			default:
				return true
			}
			sel, ok := ast.Unparen(sub.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if ident := lockIdent(info, sel.X); ident != "" {
				ops = append(ops, lockOp{ident: ident, acquire: acquire, pos: sub.Pos()})
			}
		}
		return true
	})
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// lockIdent names the mutex expression with a stable, instance-blind
// identity:
//
//	x.mu.Lock()      → pkg.TypeOfX.mu
//	pkgVar.Lock()    → pkg.pkgVar
//	s.Lock()         → pkg.TypeOfS (type embedding sync.Mutex)
//
// Function-local mutexes return "" (untracked: their scope bounds any
// deadlock to one function, which the CFG pass would need finer
// instance tracking to judge).
func lockIdent(info *types.Info, mutexExpr ast.Expr) string {
	switch e := ast.Unparen(mutexExpr).(type) {
	case *ast.SelectorExpr:
		tv, ok := info.Types[e.X]
		if !ok {
			return ""
		}
		if named := namedType(tv.Type); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
		// Package-qualified var: pkg.Mu.Lock().
		if id, ok := e.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + e.Sel.Name
			}
		}
		return ""
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		// Package-level mutex variable.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		// Value of a named type embedding the mutex.
		if named := namedType(v.Type()); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
		return ""
	}
	return ""
}

// lockPath finds a path from → to in the accumulated graph (BFS,
// deterministic neighbor order) and returns its edges, or nil.
func lockPath(graph map[string][]lockEdge, from, to string) []lockEdge {
	type qe struct {
		node string
		path []lockEdge
	}
	visited := map[string]bool{from: true}
	queue := []qe{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		edges := append([]lockEdge(nil), graph[cur.node]...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].To != edges[j].To {
				return edges[i].To < edges[j].To
			}
			return edges[i].ToSite < edges[j].ToSite
		})
		for _, e := range edges {
			path := append(append([]lockEdge(nil), cur.path...), e)
			if e.To == to {
				return path
			}
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, qe{node: e.To, path: path})
			}
		}
	}
	return nil
}
