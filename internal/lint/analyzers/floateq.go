package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"diacap/internal/lint"
)

// exactEqFuncRE names the approved exact-comparison helpers: a function
// whose name declares bit-exact intent (eqExact, dedupExact, bitsEqual,
// ...) may use ==/!= on floats. Everything else compares D and latency
// values that accumulate floating-point noise and must use an epsilon.
var exactEqFuncRE = regexp.MustCompile(`(?i)(exact|bitseq|bitideq|bitsequal|bitidentical)`)

// FloatEq forbids == and != between non-constant float expressions in
// internal packages. D values and latencies are sums of float64 terms;
// the paper's comparisons (monotone DG trajectories, certified-bound
// audits, batch tie-breaks) go wrong silently when 1e-16 of accumulated
// noise flips an exact equality. Comparisons against compile-time
// constants (sentinels like 0) stay legal, as does the x != x NaN idiom
// and code inside approved exact-eq helpers.
var FloatEq = &lint.Analyzer{
	Name:  "float-eq",
	Doc:   "no ==/!= between non-constant float64 values outside approved exact-eq helpers; use an epsilon comparison",
	Match: matchInternal,
	Run:   runFloatEq,
}

func runFloatEq(pass *lint.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return
			}
			xt, yt := info.Types[bin.X], info.Types[bin.Y]
			if !isFloat(xt.Type) || !isFloat(yt.Type) {
				return
			}
			if xt.Value != nil || yt.Value != nil {
				return // sentinel comparison against a compile-time constant
			}
			if sameIdent(bin.X, bin.Y, info) {
				return // x != x: the deliberate NaN test
			}
			if name := enclosingFuncName(stack); exactEqFuncRE.MatchString(name) {
				return
			}
			pass.Reportf(bin.OpPos,
				"%s on float64 values: accumulated rounding noise makes exact equality meaningless for D/latency math; compare with an epsilon (math.Abs(a-b) <= eps) or an approved *Exact/bits helper",
				bin.Op)
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameIdent reports whether both operands are the same identifier
// resolving to the same object.
func sameIdent(x, y ast.Expr, info *types.Info) bool {
	xi, ok1 := ast.Unparen(x).(*ast.Ident)
	yi, ok2 := ast.Unparen(y).(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	xo, yo := info.Uses[xi], info.Uses[yi]
	return xo != nil && xo == yo
}
