package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"diacap/internal/lint"
)

// matchDeterministic scopes map-iter-order to the packages whose output
// feeds the determinism fingerprints: assignment solvers, the
// incremental core, the shard plane (snapshot summaries), the dynamic
// scenario engine, and the scale pipeline's cluster/solve results. A
// range over a map in these packages injects Go's per-run random
// iteration order straight into artifacts two seeds are supposed to
// reproduce bit-for-bit.
func matchDeterministic(path string) bool {
	for _, p := range []string{
		"diacap/internal/assign",
		"diacap/internal/core",
		"diacap/internal/shard",
		"diacap/internal/dynamic",
		"diacap/internal/scale",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// MapIterOrder flags range-over-map in determinism-fingerprinted
// packages. Two body shapes are recognized as order-safe and exempted:
//
//   - key extraction: the body is a single `keys = append(keys, k)` and
//     a sort call over that slice is reachable after the loop in the
//     function's CFG — the canonical sorted-iteration idiom;
//   - delete-only: every statement is a delete on the ranged map, the
//     one mutation the language specifies as safe mid-iteration and
//     whose result is order-independent.
//
// Genuinely order-independent folds (pure max/sum over values) exist
// but are not provable cheaply; those carry a reasoned //lint:ignore
// stating the commutativity argument.
var MapIterOrder = &lint.Analyzer{
	Name:  "map-iter-order",
	Doc:   "range over a map in determinism-fingerprinted packages leaks random iteration order into reproducible artifacts; extract and sort keys first",
	Match: matchDeterministic,
	Run:   runMapIterOrder,
}

func runMapIterOrder(pass *lint.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := info.Types[rng.X]
			if !ok || tv.Type == nil {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			if deleteOnlyBody(info, rng) {
				return
			}
			fn := enclosingFunc(stack)
			if fn != nil && sortedKeyExtraction(pass, info, fn, rng) {
				return
			}
			pass.Reportf(rng.Pos(),
				"map iteration order is random per run and this package feeds determinism fingerprints; extract keys, sort, and iterate the sorted slice")
		})
	}
	return nil
}

// deleteOnlyBody reports whether every statement in the range body is a
// delete on the ranged map itself.
func deleteOnlyBody(info *types.Info, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) == 0 {
		return false
	}
	rangedObj := exprObject(info, rng.X)
	for _, stmt := range rng.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "delete" {
			return false
		}
		// delete must target the ranged map (when the ranged expression
		// is a trackable variable at all).
		if rangedObj != nil && exprObject(info, call.Args[0]) != rangedObj {
			return false
		}
	}
	return true
}

// sortedKeyExtraction recognizes
//
//	for k := range m { keys = append(keys, k) }
//	...
//	sort.Strings(keys) // or sort.Slice, slices.Sort, ...
//
// with the sort call reachable after the loop in the function's CFG.
func sortedKeyExtraction(pass *lint.Pass, info *types.Info, fn ast.Node, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	sliceObj := exprObject(info, as.Lhs[0])
	if sliceObj == nil || exprObject(info, call.Args[0]) != sliceObj {
		return false
	}
	// The appended element must be the range key variable.
	keyObj := exprObject(info, rng.Key)
	if keyObj == nil || exprObject(info, call.Args[1]) != keyObj {
		return false
	}
	// A sort over the collected slice must be reachable after the loop.
	cfg := pass.FuncCFG(fn)
	for _, n := range cfg.ReachableAfter(rng.Pos()) {
		if nodeSortsSlice(info, n, sliceObj) {
			return true
		}
	}
	return false
}

// nodeSortsSlice reports whether node n contains a call into sort or
// slices that mentions obj among its arguments.
func nodeSortsSlice(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(sub ast.Node) bool {
		if found {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			argMentions := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && exprObject(info, id) == obj {
					argMentions = true
					return false
				}
				return true
			})
			if argMentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprObject resolves an expression to its types.Object when it is a
// plain identifier (possibly parenthesized), nil otherwise.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
