package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"diacap/internal/lint"
)

// obsPkgPath is the metrics registry package whose instrument
// constructors this rule guards.
const obsPkgPath = "diacap/internal/obs"

// registryMethods are the (*obs.Registry) instrument constructors whose
// first argument is a metric name.
var registryMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

// ObsPreregister enforces the metrics-schema discipline: every metric
// name handed to the obs registry is a package-level const (so the
// exposed schema is auditable by reading const blocks, and
// Preregister functions can't drift from serving paths), and instrument
// construction never sits in a loop outside a registration function
// (the registry lookup is a lock + map probe — fine per request, wrong
// per iteration of a hot loop). As a cross-package check it also flags
// the same metric name registered with two different help strings, which
// would make the Prometheus exposition depend on registration order.
//
// The same name discipline covers the flight recorder: journal names
// passed to (*obs.Recorder).Journal must be package-level consts, and
// the get-or-create lookup (a lock + map probe) stays out of loops —
// journal handles are resolved once at construction, like instruments.
var ObsPreregister = &lint.Analyzer{
	Name: "obs-preregister",
	Doc:  "obs registry metric names and flight-recorder journal names must be package-level consts, constructed outside loops, with one help string per metric repo-wide",
	Run:  runObsPreregister,
}

// obsFact is the per-package fact: metric name → help string, for the
// names whose help argument is also constant.
type obsFact map[string]string

// registrationFuncs may construct instruments inside loops: they run
// once at startup to preregister label sets, not on a serving path.
func isRegistrationFunc(name string) bool {
	lower := strings.ToLower(name)
	return name == "init" ||
		strings.HasPrefix(lower, "preregister") ||
		strings.HasPrefix(lower, "register")
}

func runObsPreregister(pass *lint.Pass) error {
	info := pass.TypesInfo()
	fact := obsFact{}
	for _, f := range pass.Files() {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeFunc(info, call)
			if fn == nil || len(call.Args) == 0 {
				return
			}
			recv := recvNamed(fn)
			if recv == nil || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != obsPkgPath {
				return
			}
			switch {
			case registryMethods[fn.Name()] && recv.Obj().Name() == "Registry":
				name := checkMetricName(pass, fn.Name(), call.Args[0])
				if name != "" && len(call.Args) >= 2 {
					if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						fact[name] = constant.StringVal(tv.Value)
					}
				}
				if insideLoop(stack) && !anyFuncDeclNamed(stack, isRegistrationFunc) {
					pass.Reportf(call.Pos(),
						"Registry.%s inside a loop: resolve the instrument once and reuse the handle, or move registration into an init/Preregister function", fn.Name())
				}
			case fn.Name() == "Journal" && recv.Obj().Name() == "Recorder":
				checkJournalName(pass, call.Args[0])
				if insideLoop(stack) && !anyFuncDeclNamed(stack, isRegistrationFunc) {
					pass.Reportf(call.Pos(),
						"Recorder.Journal inside a loop: resolve the journal handle once at construction and reuse it")
				}
			}
		})
	}
	if len(fact) > 0 {
		for _, pf := range pass.AllPackageFacts() {
			other, ok := pf.Fact.(obsFact)
			if !ok {
				continue
			}
			for name, help := range fact {
				if prev, ok := other[name]; ok && prev != help {
					pass.Reportf(pass.Files()[0].Package,
						"metric %q registered with help %q here but %q in %s: the exposed schema would depend on registration order",
						name, help, prev, pf.Path)
				}
			}
		}
		pass.ExportPackageFact(fact)
	}
	return nil
}

// checkJournalName validates a flight-recorder journal name argument:
// a compile-time constant declared at package scope, mirroring the
// metric-name rule so journal schemas stay auditable.
func checkJournalName(pass *lint.Pass, arg ast.Expr) {
	info := pass.TypesInfo()
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"journal name passed to Recorder.Journal is not a compile-time constant: dynamic names unbound the recorder's memory and hide journals from readers of the const block")
		return
	}
	name := constant.StringVal(tv.Value)
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		pass.Reportf(arg.Pos(),
			"journal name %q must be a package-level const, not an inline literal or constant expression", name)
		return
	}
	if c, ok := obj.(*types.Const); !ok || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
		pass.Reportf(arg.Pos(),
			"journal name %q must be declared as a package-level const (found a local declaration)", name)
	}
}

// checkMetricName validates the name argument and returns its constant
// value when it has one.
func checkMetricName(pass *lint.Pass, method string, arg ast.Expr) string {
	info := pass.TypesInfo()
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"metric name passed to Registry.%s is not a compile-time constant: dynamic names defeat preregistration and unbound the scrape cardinality", method)
		return ""
	}
	name := constant.StringVal(tv.Value)
	var obj types.Object
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	default:
		pass.Reportf(arg.Pos(),
			"metric name %q must be a package-level const, not an inline literal or constant expression: consts keep the schema auditable and shared with Preregister functions", name)
		return name
	}
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
		pass.Reportf(arg.Pos(),
			"metric name %q must be declared as a package-level const (found a local declaration)", name)
	}
	return name
}
