package analyzers

import (
	"go/ast"
	"go/types"

	"diacap/internal/lint"
)

// seededRandAllowed are the constructors through which all randomness
// must flow: they produce a *rand.Rand (or source) from an explicit
// seed, which callers thread through the algorithms.
var seededRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// SeededRand forbids the package-level math/rand API in internal
// packages. The reproduction's headline numbers — heuristic D values,
// the Distributed-Greedy trajectory, the certified million-client bounds
// — are only comparable across runs if every random draw comes from an
// injected seeded *rand.Rand; a stray rand.Intn consults the global
// generator and silently destroys run-to-run reproducibility (and
// rand.Seed poisons it process-wide).
var SeededRand = &lint.Analyzer{
	Name:  "seeded-rand",
	Doc:   "all randomness in internal/ must flow through an injected seeded *rand.Rand, never the global math/rand functions",
	Match: matchInternal,
	Run:   runSeededRand,
}

func runSeededRand(pass *lint.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // methods on an injected *rand.Rand are the point
			}
			if seededRandAllowed[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to global %s.%s: draws from the process-wide generator and breaks seeded determinism; thread a seeded *rand.Rand instead",
				path, fn.Name())
			return true
		})
	}
	return nil
}
