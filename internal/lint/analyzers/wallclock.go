package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"diacap/internal/lint"
)

// matchReplay scopes wallclock-determinism to the packages whose
// behavior must replay identically under a fixed seed: the shard plane
// (epoch decisions), the dynamic scenario engine (virtual time), the
// incremental core, and the distributed greedy protocol. The scale
// pipeline is deliberately excluded — its ClusterMs/SolveMs outputs are
// measurements, not replayed decisions.
func matchReplay(path string) bool {
	for _, p := range []string{
		"diacap/internal/shard",
		"diacap/internal/dynamic",
		"diacap/internal/core",
		"diacap/internal/dgreedy",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// Wallclock bans wall-clock reads (time.Now, time.Since, time.Until) in
// replay-scoped packages. Scenario time is virtual — events carry their
// own timestamps and the fingerprint of a run must be a function of the
// seed alone — so a wall-clock read is either a determinism bug or
// observability plumbing. The observability case is recognized and
// allowed:
//
//   - the value flows (through method chains like .Seconds()) into a
//     call whose callee is in diacap/internal/obs or is annotated
//     //dialint:wallclock-ok (annotations travel as package facts, so a
//     sink in one package clears call sites in another);
//   - a `start := time.Now()` whose every use is a time.Since/Until
//     operand or such a sink argument (the Since call is then checked on
//     its own merits).
//
// Anything else — a wall-clock value reaching state, a return value, or
// a comparison — is reported.
var Wallclock = &lint.Analyzer{
	Name:  "wallclock-determinism",
	Doc:   "replay-scoped packages must not read the wall clock except to feed observability sinks; time.Now/Since/Until results may only flow into diacap/internal/obs or //dialint:wallclock-ok functions",
	Match: matchReplay,
	Run:   runWallclock,
}

// wallclockFact lists the FullNames of //dialint:wallclock-ok functions
// a package exports, so sinks clear call sites in dependent packages.
type wallclockFact struct {
	Funcs []string
}

func runWallclock(pass *lint.Pass) error {
	info := pass.TypesInfo()

	// Sink set: imported facts plus local directives (exported in turn).
	sinks := make(map[string]bool)
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(wallclockFact); ok {
			for _, fn := range f.Funcs {
				sinks[fn] = true
			}
		}
	}
	okFuncs := make(map[*ast.FuncDecl]bool)
	var local []string
	for _, d := range pass.Directives() {
		if d.Name != "wallclock-ok" || d.Fn == nil {
			continue
		}
		okFuncs[d.Fn] = true
		if obj, ok := info.Defs[d.Fn.Name].(*types.Func); ok {
			sinks[obj.FullName()] = true
			local = append(local, obj.FullName())
		}
	}
	if len(local) > 0 {
		sort.Strings(local)
		pass.ExportPackageFact(wallclockFact{Funcs: local})
	}

	for _, f := range pass.Files() {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return
			}
			switch fn.Name() {
			case "Now", "Since", "Until":
			default:
				return
			}
			if encl, _ := enclosingFunc(stack).(*ast.FuncDecl); encl != nil && okFuncs[encl] {
				return
			}
			if wallclockUseAllowed(info, stack, call, sinks) {
				return
			}
			if assignedVarOnlyFeedsSinks(pass, info, stack, call, sinks) {
				return
			}
			pass.Reportf(call.Pos(),
				"time.%s in a replay-scoped package: run behavior must be a function of the seed, not the wall clock; use the scenario clock, or route the value into diacap/internal/obs or a //dialint:wallclock-ok sink",
				fn.Name())
		})
	}
	return nil
}

// wallclockUseAllowed ascends from node (the wall-clock expression,
// whose enclosing nodes are stack, outermost first) through
// value-preserving wrappers — parens, selector chains, method calls
// staying inside package time — and reports whether the value lands as
// an argument of an allowed call: an obs-package callee, a
// //dialint:wallclock-ok sink, or time.Since/Until (which is then
// checked at its own call site).
func wallclockUseAllowed(info *types.Info, stack []ast.Node, node ast.Node, sinks map[string]bool) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
		case *ast.SelectorExpr:
			if p.X != child {
				return false // child is the field name, not the value
			}
			child = p
		case *ast.CallExpr:
			if p.Fun == child || ast.Unparen(p.Fun) == child {
				// The ascended selector is the callee: a method chain
				// like time.Since(start).Seconds(). Keep ascending only
				// while the chain stays inside package time.
				fn := calleeFunc(info, p)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
					child = p
					continue
				}
				return false
			}
			for _, arg := range p.Args {
				if arg == child || ast.Unparen(arg) == child {
					return allowedSinkCall(info, p, sinks)
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// allowedSinkCall reports whether a call may legitimately consume a
// wall-clock value.
func allowedSinkCall(info *types.Info, call *ast.CallExpr, sinks map[string]bool) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "diacap/internal/obs" {
		return true
	}
	if fn.Pkg().Path() == "time" && (fn.Name() == "Since" || fn.Name() == "Until") {
		return true // that call is checked at its own site
	}
	return sinks[fn.FullName()]
}

// assignedVarOnlyFeedsSinks handles `start := time.Now()`: allowed when
// every use of start inside the enclosing function is itself an allowed
// wall-clock use (a Since/Until operand or a sink argument).
func assignedVarOnlyFeedsSinks(pass *lint.Pass, info *types.Info, stack []ast.Node, call *ast.CallExpr, sinks map[string]bool) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != call {
		return false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return false
	}
	fnNode := enclosingFunc(stack)
	if fnNode == nil {
		return false
	}
	allowed := true
	lint.WalkStack(fileOf(pass, fnNode), func(n ast.Node, useStack []ast.Node) {
		if !allowed {
			return
		}
		use, ok := n.(*ast.Ident)
		if !ok || info.Uses[use] != obj {
			return
		}
		if !withinNode(fnNode, n) {
			return
		}
		if !wallclockUseAllowed(info, useStack, use, sinks) {
			allowed = false
		}
	})
	return allowed
}

// fileOf finds the *ast.File containing node n.
func fileOf(pass *lint.Pass, n ast.Node) *ast.File {
	for _, f := range pass.Files() {
		if f.Pos() <= n.Pos() && n.End() <= f.End() {
			return f
		}
	}
	return nil
}

func withinNode(outer, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}
