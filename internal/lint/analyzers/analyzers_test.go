package analyzers_test

import (
	"testing"

	"diacap/internal/lint/analyzers"
	"diacap/internal/lint/linttest"
)

func TestSeededRand(t *testing.T) {
	linttest.Run(t, "testdata/src/seededrand", analyzers.SeededRand)
}

func TestObsPreregister(t *testing.T) {
	linttest.Run(t, "testdata/src/obspreregister", analyzers.ObsPreregister)
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, "testdata/src/floateq", analyzers.FloatEq)
}

func TestGoroutineOwner(t *testing.T) {
	linttest.Run(t, "testdata/src/goroutineowner", analyzers.GoroutineOwner)
}

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxfirst", analyzers.CtxFirst)
}

func TestMutexValue(t *testing.T) {
	linttest.Run(t, "testdata/src/mutexvalue", analyzers.MutexValue)
}

func TestSnapshotImmutable(t *testing.T) {
	linttest.Run(t, "testdata/src/snapshotimmutable", analyzers.SnapshotImmutable)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/lockorder", analyzers.LockOrder)
}

func TestHotpathAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/hotpathalloc", analyzers.HotpathAlloc)
}

func TestMapIterOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/mapiterorder", analyzers.MapIterOrder)
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata/src/wallclock", analyzers.Wallclock)
}

func TestAllHaveDocsAndNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		got, ok := analyzers.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want the analyzer itself", a.Name, got, ok)
		}
	}
	if len(seen) != 11 {
		t.Errorf("expected 11 analyzers, got %d", len(seen))
	}
}
