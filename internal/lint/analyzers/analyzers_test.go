package analyzers_test

import (
	"testing"

	"diacap/internal/lint/analyzers"
	"diacap/internal/lint/linttest"
)

func TestSeededRand(t *testing.T) {
	linttest.Run(t, "testdata/src/seededrand", analyzers.SeededRand)
}

func TestObsPreregister(t *testing.T) {
	linttest.Run(t, "testdata/src/obspreregister", analyzers.ObsPreregister)
}

func TestFloatEq(t *testing.T) {
	linttest.Run(t, "testdata/src/floateq", analyzers.FloatEq)
}

func TestGoroutineOwner(t *testing.T) {
	linttest.Run(t, "testdata/src/goroutineowner", analyzers.GoroutineOwner)
}

func TestCtxFirst(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxfirst", analyzers.CtxFirst)
}

func TestMutexValue(t *testing.T) {
	linttest.Run(t, "testdata/src/mutexvalue", analyzers.MutexValue)
}

func TestAllHaveDocsAndNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analyzers.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		got, ok := analyzers.ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = %v, %v; want the analyzer itself", a.Name, got, ok)
		}
	}
	if len(seen) != 6 {
		t.Errorf("expected 6 analyzers, got %d", len(seen))
	}
}
