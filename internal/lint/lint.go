// Package lint is dialint's engine: a dependency-free static-analysis
// framework on the standard library's go/parser and go/types, built for
// the repository's domain invariants — seeded-randomness discipline,
// metric preregistration, float-comparison hygiene, goroutine ownership,
// context threading, and lock copying. Off-the-shelf linters check Go
// idioms; these rules check the assumptions the paper reproduction's
// claims rest on (deterministic runs under a seed, a stable metrics
// schema, leak-free failover), which no generic tool can know about.
//
// The moving parts:
//
//   - Analyzer: a named rule with a Run function over one package.
//   - Pass: what Run sees — the parsed+type-checked package, a Reportf
//     sink, and a per-package fact store for cross-package rules.
//   - Loader (load.go): resolves packages via `go list -export` and
//     type-checks target sources against compiler export data, so the
//     engine needs no third-party machinery.
//   - Suppression: `//lint:ignore dialint/<rule> reason` on (or directly
//     above) the offending line silences one rule there; the reason is
//     mandatory and a malformed ignore is itself a diagnostic.
//
// cmd/dialint is the CLI; linttest drives the `// want "regex"`
// expectation suites under analyzers/testdata.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one dialint rule.
type Analyzer struct {
	// Name is the rule name cited in diagnostics as dialint/<Name>.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match restricts the rule to packages whose import path it accepts;
	// nil applies the rule everywhere. The testdata driver bypasses it.
	Match func(importPath string) bool
	// Run analyzes one package, reporting findings through the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, bound to a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: dialint/%s: %s", d.Pos, d.Rule, d.Message)
}

// PackageFact is analyzer-produced data attached to an analyzed package,
// visible to later passes of the same analyzer over other packages.
type PackageFact struct {
	// Path is the import path of the package that exported the fact.
	Path string
	// Fact is the analyzer-defined payload.
	Fact any
}

// factStore maps analyzer name → package path → exported fact.
type factStore map[string]map[string]any

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	store factStore
	supp  suppressions
}

// Fset returns the file set the package was parsed into.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// TypesPkg returns the type-checked package object.
func (p *Pass) TypesPkg() *types.Package { return p.Pkg.Types }

// Reportf records a diagnostic at pos unless a matching suppression
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.supp.covers(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ExportPackageFact publishes fact for the package under analysis.
// Later packages (in dependency order) can read it via AllPackageFacts.
func (p *Pass) ExportPackageFact(fact any) {
	byPkg := p.store[p.Analyzer.Name]
	if byPkg == nil {
		byPkg = make(map[string]any)
		p.store[p.Analyzer.Name] = byPkg
	}
	byPkg[p.Pkg.ImportPath] = fact
}

// AllPackageFacts returns the facts this analyzer exported for
// previously analyzed packages, sorted by package path.
func (p *Pass) AllPackageFacts() []PackageFact {
	byPkg := p.store[p.Analyzer.Name]
	out := make([]PackageFact, 0, len(byPkg))
	for path, fact := range byPkg {
		out = append(out, PackageFact{Path: path, Fact: fact})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// WalkStack walks the file invoking fn for every node with the stack of
// enclosing nodes (outermost first, not including n itself). Analyzers
// use it where a finding depends on context — enclosing function, loop,
// or go statement.
func WalkStack(file *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// ignoreRE matches a well-formed suppression comment. The rule must
// carry the dialint/ prefix so grepping for a rule name finds its
// suppressions; the rule name is a letter followed by letters, digits,
// or hyphens, and must be separated from the reason by whitespace —
// `dialint/rule!junk` is rejected rather than silently parsed as rule
// "rule" with reason "!junk". ignoreLooseRE catches anything that
// tries to be an ignore directive but fails the strict form, so typos
// surface as malformed-ignore diagnostics instead of silently
// suppressing nothing.
var (
	ignoreRE      = regexp.MustCompile(`^//\s*lint:ignore\s+dialint/([A-Za-z][A-Za-z0-9-]*)(?:\s+(\S.*?))?\s*$`)
	ignoreLooseRE = regexp.MustCompile(`^//\s*lint:ignore(\s|$)`)
)

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file   string
	line   int
	rule   string
	reason string
	pos    token.Position
}

// suppressions indexes ignore comments by file and line.
type suppressions map[string]map[int][]suppression

// covers reports whether a diagnostic for rule at pos is silenced: an
// ignore with a non-empty reason on the same line or the line directly
// above (the comment-on-its-own-line form).
func (s suppressions) covers(pos token.Position, rule string) bool {
	lines := s[pos.Filename]
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		for _, sup := range lines[ln] {
			if sup.rule == rule && sup.reason != "" {
				return true
			}
		}
	}
	return false
}

// parseSuppressions scans the package's comments for ignore directives.
// Directives missing a reason are returned so the runner can flag them:
// an unexplained suppression is exactly the tribal knowledge dialint
// exists to eliminate.
func parseSuppressions(pkg *Package) (suppressions, []suppression) {
	supp := make(suppressions)
	var malformed []suppression
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					// A comment that looks like an ignore directive but
					// fails the strict form (bad rule name, trailing
					// junk, missing dialint/ prefix) would otherwise
					// suppress nothing, silently.
					if ignoreLooseRE.MatchString(c.Text) {
						pos := pkg.Fset.Position(c.Pos())
						malformed = append(malformed, suppression{
							file: pos.Filename, line: pos.Line, pos: pos,
						})
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup := suppression{
					file:   pos.Filename,
					line:   pos.Line,
					rule:   m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    pos,
				}
				if sup.reason == "" {
					malformed = append(malformed, sup)
					continue
				}
				byLine := supp[sup.file]
				if byLine == nil {
					byLine = make(map[int][]suppression)
					supp[sup.file] = byLine
				}
				byLine[sup.line] = append(byLine[sup.line], sup)
			}
		}
	}
	return supp, malformed
}

// Run applies the analyzers to the packages (which must be in dependency
// order, as the Loader returns them, for facts to flow forward) and
// returns all diagnostics sorted by position. Type-check failures
// surface as dialint/typecheck diagnostics rather than aborting the run,
// so one broken package does not hide findings elsewhere.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	store := make(factStore)
	for _, pkg := range pkgs {
		supp, malformed := parseSuppressions(pkg)
		for _, m := range malformed {
			msg := fmt.Sprintf("lint:ignore dialint/%s needs a reason; an unexplained suppression is not an invariant", m.rule)
			if m.rule == "" {
				msg = "unparseable lint:ignore directive: want //lint:ignore dialint/<rule> reason"
			}
			diags = append(diags, Diagnostic{
				Pos:     m.pos,
				Rule:    "malformed-ignore",
				Message: msg,
			})
		}
		for _, err := range pkg.TypeErrors {
			diags = append(diags, Diagnostic{
				Pos:     positionOfError(pkg, err),
				Rule:    "typecheck",
				Message: err.Error(),
			})
		}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.ImportPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, store: store, supp: supp}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

func positionOfError(pkg *Package, err error) token.Position {
	if te, ok := err.(types.Error); ok {
		return te.Fset.Position(te.Pos)
	}
	if len(pkg.Files) > 0 {
		return pkg.Fset.Position(pkg.Files[0].Package)
	}
	return token.Position{Filename: pkg.Dir}
}
