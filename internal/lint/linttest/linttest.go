// Package linttest drives dialint analyzers over expectation-annotated
// testdata packages. A testdata source line carries one or more
// `// want "regex"` comments; the runner checks that the analyzer
// reports a diagnostic matching each regex on exactly that line, and
// that no diagnostic goes unexpected. Suppressed findings (a
// `//lint:ignore dialint/<rule> reason` in the testdata) must produce no
// diagnostic and therefore no want comment — which is how the
// suppression mechanism itself gets covered.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"diacap/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// sharedLoader caches one Loader per test process: the `go list -export`
// resolution behind it costs a second or two and is identical for every
// analyzer suite.
func sharedLoader() (*lint.Loader, error) {
	loaderOnce.Do(func() {
		loader, loaderErr = lint.NewLoader(".")
	})
	return loader, loaderErr
}

// wantRE matches one expectation; several may sit on one line.
var wantRE = regexp.MustCompile(`// want ("(?:[^"\\]|\\.)*")`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the testdata package at dir (relative to the calling test's
// package directory), applies the analyzer, and asserts the diagnostics
// equal the // want expectations.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(abs, "dialint.test/"+filepath.Base(dir))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("testdata must type-check: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	expects := collectWants(t, pkg)
	// Bypass Match: testdata lives under dialint.test/, not the import
	// paths the production rule is scoped to.
	unscoped := *a
	unscoped.Match = nil
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	// Engine-level diagnostics (malformed-ignore) claim want comments the
	// same way analyzer findings do, so suppression syntax is testable.
	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

func claim(expects []*expectation, d lint.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				out = append(out, parseWants(t, pkg.Fset, c)...)
			}
		}
	}
	return out
}

func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	pos := fset.Position(c.Pos())
	var out []*expectation
	for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
		pattern, err := strconv.Unquote(m[1])
		if err != nil {
			t.Fatalf("%s: bad want string %s: %v", pos, m[1], err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
	}
	return out
}

// Fprint is a debugging aid: it renders diagnostics one per line, the
// format cmd/dialint prints.
func Fprint(diags []lint.Diagnostic) string {
	s := ""
	for _, d := range diags {
		s += fmt.Sprintln(d)
	}
	return s
}
