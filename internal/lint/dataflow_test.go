package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// checkFunc parses and type-checks src (a full file body following
// "package p") and returns the named function with its CFG and info.
func checkFunc(t *testing.T, src, fnName string) (*token.FileSet, *types.Info, *ast.FuncDecl, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "df_test_src.go", "package p\n\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: importer.Default()}
	if _, err := cfg.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type check: %v", err)
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == fnName {
			return fset, info, fd, BuildCFG(fd, fd.Body)
		}
	}
	t.Fatalf("function %s not found", fnName)
	return nil, nil, nil, nil
}

// queryPos finds the `use(v)` marker call and returns its position.
func queryPos(t *testing.T, fn *ast.FuncDecl) token.Pos {
	t.Helper()
	var pos token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
				pos = call.Pos()
			}
		}
		return true
	})
	if !pos.IsValid() {
		t.Fatal("use(...) marker not found")
	}
	return pos
}

// objNamed finds the unique variable object with the given name defined
// anywhere in the function (parameters included).
func objNamed(t *testing.T, info *types.Info, fn *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if def := info.Defs[id]; def != nil {
				obj = def
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no definition of %q in %s", name, fn.Name.Name)
	}
	return obj
}

// describeDefs renders a def list as sorted "entry" / "L<line>" tags —
// the golden form the table compares against.
func describeDefs(fset *token.FileSet, defs []Def) string {
	var tags []string
	for _, d := range defs {
		if d.Node == nil {
			tags = append(tags, "entry")
		} else {
			tags = append(tags, fmt.Sprintf("L%d", fset.Position(d.Node.Pos()).Line))
		}
	}
	sort.Strings(tags)
	return strings.Join(tags, ",")
}

// Line numbers in the goldens are relative to the synthetic file: the
// "package p" header is line 1, a blank line 2, and the source begins
// at line 3.
func TestReachingDefsGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		v    string
		want string
	}{
		{
			name: "straight line overwrite kills",
			src: `func use(any) {}
func f() {
	x := 1
	x = 2
	use(x)
}`,
			v:    "x",
			want: "L6", // only x = 2 reaches the use
		},
		{
			name: "branches merge defs",
			src: `func use(any) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	}
	use(x)
}`,
			v:    "x",
			want: "L5,L7", // both the original and the branch def survive
		},
		{
			name: "both arms kill the original",
			src: `func use(any) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	use(x)
}`,
			v:    "x",
			want: "L7,L9",
		},
		{
			name: "loop def joins pre-loop def",
			src: `func use(any) {}
func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = 2
	}
	use(x)
}`,
			v:    "x",
			want: "L5,L7",
		},
		{
			name: "use inside loop sees previous iteration",
			src: `func use(any) {}
func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		use(x)
		x = 2
	}
}`,
			v:    "x",
			want: "L5,L8", // first iteration sees L5, later ones L8
		},
		{
			name: "parameter is an entry def",
			src: `func use(any) {}
func f(x int) {
	use(x)
}`,
			v:    "x",
			want: "entry",
		},
		{
			name: "parameter overwritten on one path",
			src: `func use(any) {}
func f(x int, c bool) {
	if c {
		x = 9
	}
	use(x)
}`,
			v:    "x",
			want: "L6,entry",
		},
		{
			name: "range loop redefines the key each iteration",
			src: `func use(any) {}
func f(xs []int) {
	k := -1
	for k = range xs {
		use(k)
	}
}`,
			v:    "k",
			want: "L6", // the head re-assigns k before every body entry
		},
		{
			name: "early return does not leak its def",
			src: `func use(any) {}
func f(c bool) {
	x := 1
	if c {
		x = 2
		return
	}
	use(x)
}`,
			v:    "x",
			want: "L5", // the returned path's def never reaches the use
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, info, fn, cfg := checkFunc(t, tc.src, "f")
			rd := NewReachingDefs(cfg, info)
			got := describeDefs(fset, rd.At(queryPos(t, fn), objNamed(t, info, fn, tc.v)))
			if got != tc.want {
				t.Errorf("defs of %s at use() = %q, want %q", tc.v, got, tc.want)
			}
		})
	}
}

func TestIsFreshAlloc(t *testing.T) {
	src := `type T struct{ N int }
func use(any) {}
func g() *T { return nil }
func f(p *T) {
	a := &T{}
	b := T{}
	c := new(T)
	d := make([]int, 4)
	e := g()
	q := p
	use(a)
	use(b)
	use(c)
	use(d)
	use(e)
	use(q)
}`
	_, info, fn, cfg := checkFunc(t, src, "f")
	rd := NewReachingDefs(cfg, info)
	fresh := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": false, "q": false}
	// One query point late in the function sees every def.
	pos := queryPos(t, fn)
	for name, want := range fresh {
		defs := rd.At(pos, objNamed(t, info, fn, name))
		if len(defs) != 1 {
			t.Fatalf("%s: %d defs, want 1", name, len(defs))
		}
		if got := defs[0].IsFreshAlloc(info); got != want {
			t.Errorf("IsFreshAlloc(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestComputeAliases(t *testing.T) {
	src := `type T struct{ N int }
var global *T
func use(any) {}
func f() *T {
	s := &T{}
	w := s
	v := w
	other := &T{}
	use(other)
	return v
}
func h(s *T) {
	w := s
	global = w
}
func k(s *T) {
	w := s
	use(w)
}`
	for _, tc := range []struct {
		fn      string
		aliases []string
		escaped bool
	}{
		{fn: "f", aliases: []string{"s", "w", "v"}, escaped: true}, // returned
		{fn: "h", aliases: []string{"s", "w"}, escaped: true},      // bound to a package-level variable
		{fn: "k", aliases: []string{"s", "w"}, escaped: false},     // call args do not escape
	} {
		t.Run(tc.fn, func(t *testing.T) {
			_, info, fn, _ := checkFunc(t, src, tc.fn)
			root := objNamed(t, info, fn, "s")
			a := ComputeAliases(fn.Body, info, root)
			for _, name := range tc.aliases {
				if !a.Set[objNamed(t, info, fn, name)] {
					t.Errorf("%s missing from alias set", name)
				}
			}
			if a.Set[infoObjUse(info, fn, "other")] {
				t.Error("other wrongly aliased")
			}
			if a.Escaped != tc.escaped {
				t.Errorf("Escaped = %v, want %v", a.Escaped, tc.escaped)
			}
		})
	}
}

// infoObjUse is objNamed without the fatal: nil when the function has no
// variable of that name.
func infoObjUse(info *types.Info, fn *ast.FuncDecl, name string) types.Object {
	var obj types.Object
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if def := info.Defs[id]; def != nil {
				obj = def
			}
		}
		return true
	})
	return obj
}
