package lint

import (
	"go/ast"
	"go/token"
)

// This file is dialint's control-flow layer: intraprocedural CFGs over
// go/ast, built per function body and cached on the Package. The CFG is
// deliberately source-level — blocks hold the original statement and
// control-expression nodes, in execution order — so analyzers can walk
// from a syntactic event (a publish call, a lock acquisition) to the
// set of statements that may execute after it, without any IR lowering.
//
// Precision notes, shared by every client:
//
//   - Branch conditions are treated as opaque: both arms of every if,
//     every case of every switch/select, and the zero-iteration exit of
//     every loop are considered possible. The analyses built on top are
//     therefore may-analyses.
//   - panic(...), os.Exit, runtime.Goexit, and log.Fatal* terminate the
//     block with an edge to Exit, so code behind an early panic guard is
//     not considered reachable from before it.
//   - Function literals are opaque values here: a FuncLit appearing in a
//     statement does not splice its body into the enclosing CFG. Build a
//     separate CFG for the literal to analyze its body.
//   - defer bodies run at function exit; DeferStmt nodes stay in their
//     block (their arguments evaluate there) and are also collected in
//     CFG.Defers for clients that model exit-time effects.

// Block is one basic block: a maximal straight-line run of statements
// and control expressions with a single entry point.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry = 0).
	Index int
	// Nodes are the block's statements and control expressions in
	// execution order. A node is a statement, or the condition/tag
	// expression of the branch that ends the block.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges, in creation order
	// (deterministic for a given syntax tree).
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Fn is the function the graph was built from: an *ast.FuncDecl or
	// *ast.FuncLit.
	Fn ast.Node
	// Blocks lists every block; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the synthetic exit block (no Nodes). Returns, panics, and
	// the fall-off-the-end path all edge here.
	Exit *Block
	// Defers collects the defer statements seen anywhere in the body, in
	// source order; their calls run at every path into Exit.
	Defers []*ast.DeferStmt
}

// Entry returns the entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// BuildCFG constructs the CFG for a function body. body may be nil (a
// declaration without a body), yielding a graph with only entry and
// exit.
func BuildCFG(fn ast.Node, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{Fn: fn},
		labels: make(map[string]*Block),
	}
	entry := b.newBlock()
	b.cfg.Exit = &Block{}
	b.cur = entry
	if body != nil {
		b.stmt(body, "")
	}
	if b.cur != nil {
		b.link(b.cur, b.cfg.Exit)
	}
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target)
		}
	}
	b.cfg.Exit.Index = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

// branchTarget is one entry of the break/continue resolution stacks.
type branchTarget struct {
	label string
	block *Block
}

type gotoFixup struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil after a terminating statement (unreachable point)
	brk    []branchTarget
	cont   []branchTarget
	labels map[string]*Block
	gotos  []gotoFixup
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ensure gives unreachable statements their own island block so they
// still appear in the graph (with no predecessors).
func (b *cfgBuilder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

// target resolves a break/continue label against a stack; the empty
// label matches the innermost entry.
func target(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// stmt lowers one statement. label is the pending label when the
// statement is the body of a LabeledStmt, so labeled break/continue
// resolve to this loop or switch.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			b.stmt(sub, "")
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.ensure()
		thenB := b.newBlock()
		b.link(cond, thenB)
		b.cur = thenB
		b.stmt(s.Body, "")
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			elseB := b.newBlock()
			b.link(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else, "")
			elseEnd = b.cur
		}
		join := b.newBlock()
		if thenEnd != nil {
			b.link(thenEnd, join)
		}
		if !hasElse {
			b.link(cond, join)
		} else if elseEnd != nil {
			b.link(elseEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.link(b.ensure(), head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		join := b.newBlock()
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.link(post, head)
			contTarget = post
		}
		if s.Cond != nil {
			b.link(head, join)
		}
		body := b.newBlock()
		b.link(head, body)
		b.brk = append(b.brk, branchTarget{label, join})
		b.cont = append(b.cont, branchTarget{label, contTarget})
		b.cur = body
		b.stmt(s.Body, "")
		if b.cur != nil {
			b.link(b.cur, contTarget)
		}
		b.brk = b.brk[:len(b.brk)-1]
		b.cont = b.cont[:len(b.cont)-1]
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock()
		b.link(b.ensure(), head)
		// The RangeStmt itself is the head node: it evaluates X and, on
		// each iteration, (re)defines Key and Value.
		head.Nodes = append(head.Nodes, s)
		join := b.newBlock()
		b.link(head, join) // zero iterations
		body := b.newBlock()
		b.link(head, body)
		b.brk = append(b.brk, branchTarget{label, join})
		b.cont = append(b.cont, branchTarget{label, head})
		b.cur = body
		b.stmt(s.Body, "")
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.brk = b.brk[:len(b.brk)-1]
		b.cont = b.cont[:len(b.cont)-1]
		b.cur = join

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				b.add(sw.Init)
			}
			if sw.Tag != nil {
				b.add(sw.Tag)
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				b.add(sw.Init)
			}
			b.add(sw.Assign)
			bodyList = sw.Body.List
		}
		entry := b.ensure()
		join := b.newBlock()
		b.brk = append(b.brk, branchTarget{label, join})
		// Pre-create the case blocks so fallthrough can edge forward.
		caseBlocks := make([]*Block, len(bodyList))
		hasDefault := false
		for i, cs := range bodyList {
			caseBlocks[i] = b.newBlock()
			b.link(entry, caseBlocks[i])
			if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
				hasDefault = true
			}
		}
		for i, cs := range bodyList {
			cc := cs.(*ast.CaseClause)
			// The clause node carries the case expressions (and, in a
			// type switch, the per-clause implicit definition).
			caseBlocks[i].Nodes = append(caseBlocks[i].Nodes, cc)
			b.cur = caseBlocks[i]
			for _, sub := range cc.Body {
				if br, ok := sub.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					if b.cur != nil && i+1 < len(caseBlocks) {
						b.link(b.cur, caseBlocks[i+1])
					}
					b.cur = nil
					continue
				}
				b.stmt(sub, "")
			}
			if b.cur != nil {
				b.link(b.cur, join)
			}
		}
		if !hasDefault {
			b.link(entry, join)
		}
		b.brk = b.brk[:len(b.brk)-1]
		b.cur = join

	case *ast.SelectStmt:
		entry := b.ensure()
		join := b.newBlock()
		b.brk = append(b.brk, branchTarget{label, join})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			cb := b.newBlock()
			b.link(entry, cb)
			if cc.Comm != nil {
				cb.Nodes = append(cb.Nodes, cc.Comm)
			}
			b.cur = cb
			for _, sub := range cc.Body {
				b.stmt(sub, "")
			}
			if b.cur != nil {
				b.link(b.cur, join)
			}
		}
		b.brk = b.brk[:len(b.brk)-1]
		b.cur = join

	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.link(b.ensure(), lbl)
		b.labels[s.Label.Name] = lbl
		b.cur = lbl
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := target(b.brk, labelName(s)); t != nil {
				b.link(b.ensure(), t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := target(b.cont, labelName(s)); t != nil {
				b.link(b.ensure(), t)
			}
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, gotoFixup{from: b.ensure(), label: labelName(s)})
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled inside the switch lowering; a stray one (invalid
			// Go) is ignored.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.link(b.cur, b.cfg.Exit)
			b.cur = nil
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, ...
		b.add(s)
	}
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

// isTerminalCall reports whether expr is a call that never returns:
// panic, os.Exit, runtime.Goexit, or log.Fatal*. Purely syntactic (no
// type info is available at CFG-build time), which is fine: a shadowed
// `panic` would only make the graph conservative in the wrong direction
// for exotic code the repo does not contain.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// BlockOf locates the block and node index whose node spans pos, or
// (nil, -1) when pos is not inside any recorded node (e.g. inside a
// FuncLit body, which has its own CFG). Some recorded nodes span nested
// ones — a RangeStmt or CaseClause covers its whole body — so the
// tightest spanning node wins.
func (c *CFG) BlockOf(pos token.Pos) (*Block, int) {
	var best *Block
	bestIdx := -1
	var bestSpan token.Pos = -1
	for _, blk := range c.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				if span := n.End() - n.Pos(); bestSpan < 0 || span < bestSpan {
					best, bestIdx, bestSpan = blk, i, span
				}
			}
		}
	}
	return best, bestIdx
}

// ReachableAfter returns the nodes that may execute strictly after the
// node spanning pos: the rest of its own block, every node of every
// transitively reachable successor block, and — when the node sits in a
// cycle — the earlier nodes of its own block too. The order is
// deterministic (own-block suffix first, then blocks by index).
func (c *CFG) ReachableAfter(pos token.Pos) []ast.Node {
	blk, idx := c.BlockOf(pos)
	if blk == nil {
		return nil
	}
	var out []ast.Node
	out = append(out, blk.Nodes[idx+1:]...)
	seen := make([]bool, len(c.Blocks))
	stack := append([]*Block(nil), blk.Succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n.Index] {
			continue
		}
		seen[n.Index] = true
		stack = append(stack, n.Succs...)
	}
	for _, b2 := range c.Blocks {
		if !seen[b2.Index] {
			continue
		}
		if b2 == blk {
			// The node is inside a loop: its own earlier nodes (and
			// itself) may run again after it.
			out = append(out, b2.Nodes[:idx+1]...)
			continue
		}
		out = append(out, b2.Nodes...)
	}
	return out
}
