package scale

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diacap/internal/assign"
	"diacap/internal/core"
	"diacap/internal/latency"
	"diacap/internal/obs"
)

// Solver-pool metric names and help strings, package-level consts per
// the dialint/obs-preregister schema discipline.
const (
	nSolverWorkers = "diacap_scale_solver_workers"
	hSolverWorkers = "Worker-pool size of the last reduced solve."
	nSolverJobs    = "diacap_scale_solver_jobs"
	hSolverJobs    = "Jobs fanned out by the last reduced solve."
	nWorkerUtil    = "diacap_scale_worker_utilization"
	hWorkerUtil    = "Busy-time fraction of the worker pool over the last reduced solve (0-1)."
)

// reduced is the cell-level instance: servers keep their identity,
// cells stand in for their members, and each cell weighs its member
// count against server capacities.
type reduced struct {
	in      *core.Instance
	cells   []Cell
	weights assign.Weights
	servers []latency.Coord
}

// buildReduced materializes the (U + k)-node instance from coordinates.
// The matrix is tiny by construction (k ≤ MaxCells), so the O((U+k)²)
// cost is negligible next to clustering. Distances come straight from
// the coordinate metric; NewInstanceTrusted skips the positivity
// validation a measured matrix would need (coincident reps are fine
// here).
func buildReduced(servers []latency.Coord, cells []Cell) (*reduced, error) {
	u, k := len(servers), len(cells)
	m := latency.NewMatrix(u + k)
	node := func(i int) latency.Coord {
		if i < u {
			return servers[i]
		}
		return cells[i-u].Rep
	}
	for i := 0; i < u+k; i++ {
		ci := node(i)
		for j := i + 1; j < u+k; j++ {
			v := ci.LatencyTo(node(j))
			m[i][j], m[j][i] = v, v
		}
	}
	serverIdx := make([]int, u)
	cellIdx := make([]int, k)
	for i := range serverIdx {
		serverIdx[i] = i
	}
	for j := range cellIdx {
		cellIdx[j] = u + j
	}
	in, err := core.NewInstanceTrusted(m, serverIdx, cellIdx)
	if err != nil {
		return nil, fmt.Errorf("scale: building reduced instance: %w", err)
	}
	weights := make(assign.Weights, k)
	for j, c := range cells {
		weights[j] = len(c.Members)
	}
	return &reduced{in: in, cells: cells, weights: weights, servers: servers}, nil
}

// certifiedD bounds the client-level D implied by a cell assignment,
// using the per-cell radii: a server's certified eccentricity is
// max over its cells of d(rep, s) + ρ, and the bound is the usual
// eccentricity form max_{s,t} ecc(s) + d(s, t) + ecc(t). This is tighter
// than D_cells + 2·max ρ (which it never exceeds) because each cell's ρ
// is charged only where the cell actually lands.
func (r *reduced) certifiedD(a core.Assignment) float64 {
	u := r.in.NumServers()
	ecc := make([]float64, u)
	for k := range ecc {
		ecc[k] = -1
	}
	for j, s := range a {
		if v := r.in.ClientServerDist(j, s) + r.cells[j].Rho; v > ecc[s] {
			ecc[s] = v
		}
	}
	best := 0.0
	for s := 0; s < u; s++ {
		if ecc[s] < 0 {
			continue
		}
		for t := s; t < u; t++ {
			if ecc[t] < 0 {
				continue
			}
			if v := ecc[s] + r.in.ServerServerDist(s, t) + ecc[t]; v > best {
				best = v
			}
		}
	}
	return best
}

// candidate is one solver's output on the reduced instance.
type candidate struct {
	name string
	a    core.Assignment
	// certD is the certified client-level bound — the selection
	// objective, since the cell-level D ignores how cell radii land.
	certD float64
	err   error
}

// solveAll fans the (algorithm × seed) jobs over a worker pool and
// returns the best feasible candidate. Randomized algorithms contribute
// one job per restart seed; deterministic ones run once. The winner is
// the candidate with the lowest certified bound, ties broken by job
// order, so the result is independent of worker count and scheduling.
// A non-nil reg receives pool telemetry (worker count, jobs, busy-time
// utilization).
func (r *reduced) solveAll(algorithms []assign.WeightedAlgorithm, caps core.Capacities, seed int64, restarts, workers int, reg *obs.Registry) (candidate, []candidate, error) {
	type job struct {
		name  string
		solve func() (core.Assignment, error)
	}
	var jobs []job
	for _, alg := range algorithms {
		alg := alg
		jobs = append(jobs, job{alg.Name(), func() (core.Assignment, error) {
			return alg.AssignWeighted(r.in, r.weights, caps)
		}})
	}
	for i := 0; i < restarts; i++ {
		s := seed + int64(i)
		jobs = append(jobs, job{fmt.Sprintf("Random[%d]", i), func() (core.Assignment, error) {
			return assign.RandomAssign{Seed: s}.AssignWeighted(r.in, r.weights, caps)
		}})
	}
	if len(jobs) == 0 {
		return candidate{}, nil, fmt.Errorf("scale: no algorithms to run")
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]candidate, len(jobs))
	next := make(chan int)
	var busy atomic.Int64 // summed per-job wall time, ns
	poolStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				jobStart := time.Now()
				a, err := jobs[idx].solve()
				c := candidate{name: jobs[idx].name, a: a, err: err}
				if err == nil {
					c.certD = r.certifiedD(a)
				}
				results[idx] = c
				busy.Add(int64(time.Since(jobStart)))
			}
		}()
	}
	for idx := range jobs {
		next <- idx
	}
	close(next)
	wg.Wait()
	if reg != nil {
		wall := time.Since(poolStart)
		util := 0.0
		if wall > 0 {
			util = float64(busy.Load()) / (float64(wall) * float64(workers))
		}
		reg.Gauge(nSolverWorkers, hSolverWorkers).Set(float64(workers))
		reg.Gauge(nSolverJobs, hSolverJobs).Set(float64(len(jobs)))
		reg.Gauge(nWorkerUtil, hWorkerUtil).Set(util)
	}

	best := -1
	for i, c := range results {
		if c.err != nil {
			continue
		}
		if best == -1 || c.certD < results[best].certD {
			best = i
		}
	}
	if best == -1 {
		return candidate{}, results, fmt.Errorf("scale: every solver failed; first error: %w", results[0].err)
	}
	return results[best], results, nil
}
