package scale

import (
	"math/rand"

	"diacap/internal/core"
	"diacap/internal/latency"
)

// expand maps the cell-level assignment back to clients: every member of
// a cell follows its cell's server. Capacity feasibility carries over
// exactly because the weighted solve charged each cell its member count.
func expand(n int, cells []Cell, cellAssign core.Assignment) []int {
	a := make([]int, n)
	for j, cell := range cells {
		for _, i := range cell.Members {
			a[i] = cellAssign[j]
		}
	}
	return a
}

// serverDist is the server-to-server latency: zero on the diagonal — a
// pair sharing a server has no inter-server leg, whereas
// Coord.LatencyTo of a point to itself still pays both heights.
func serverDist(servers []latency.Coord, s, t int) float64 {
	if s == t {
		return 0
	}
	return servers[s].LatencyTo(servers[t])
}

// exactD computes the true client-level D of an expanded assignment
// under the coordinate metric, in O(n + U²) via the eccentricity
// decomposition (core.MaxInteractionPath's trick, restated over
// coordinates): each client contributes only to its own server's
// eccentricity, and the pair maximum separates per-server.
func exactD(clients, servers []latency.Coord, a []int) float64 {
	u := len(servers)
	ecc := make([]float64, u)
	for k := range ecc {
		ecc[k] = -1
	}
	for i, s := range a {
		if d := clients[i].LatencyTo(servers[s]); d > ecc[s] {
			ecc[s] = d
		}
	}
	best := 0.0
	for s := 0; s < u; s++ {
		if ecc[s] < 0 {
			continue
		}
		for t := s; t < u; t++ {
			if ecc[t] < 0 {
				continue
			}
			if v := ecc[s] + serverDist(servers, s, t) + ecc[t]; v > best {
				best = v
			}
		}
	}
	return best
}

// auditD spot-checks the expansion by measuring the interaction path of
// `pairs` uniformly random client pairs (with replacement). It can only
// under-report exactD — it samples a maximum — and exists as an
// independent check that the expansion and the eccentricity bookkeeping
// agree: AuditedD ≤ ExactD ≤ CertifiedD must hold.
func auditD(clients, servers []latency.Coord, a []int, pairs int, seed int64) float64 {
	if pairs <= 0 || len(a) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	best := 0.0
	for p := 0; p < pairs; p++ {
		i, j := rng.Intn(len(a)), rng.Intn(len(a))
		v := clients[i].LatencyTo(servers[a[i]]) +
			serverDist(servers, a[i], a[j]) +
			clients[j].LatencyTo(servers[a[j]])
		if v > best {
			best = v
		}
	}
	return best
}
