package scale

import (
	"fmt"
	"math"

	"diacap/internal/latency"
)

// Cell is one cluster of clients in the reduced instance: its members
// stand in for each other, represented by Rep (their centroid with the
// mean access height). Rho is the largest member→Rep latency under the
// coordinate metric; it is the cell's contribution to the expansion
// certificate — any member reaches any server within Rho of what Rep
// does.
type Cell struct {
	Rep     latency.Coord
	Members []int
	Rho     float64
}

// geomDist is the pure Euclidean part of the coordinate metric.
// Clustering groups by geometry only: heights are per-node access delays
// that no choice of cell boundary can cancel, so they are excluded from
// the grouping decision and only re-enter through Rho.
func geomDist(a, b latency.Coord) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// grid is a uniform spatial hash over the X–Y plane with bucket edge =
// size. For points p, q with geomDist(p, q) ≤ size, q's bucket is within
// the 3×3 neighborhood of p's (the X–Y projection never exceeds the 3-D
// distance), so radius-bounded neighbor queries scan at most nine
// buckets.
type grid struct {
	size    float64
	buckets map[[2]int32][]int
}

func newGrid(size float64) *grid {
	return &grid{size: size, buckets: make(map[[2]int32][]int)}
}

func (g *grid) key(c latency.Coord) [2]int32 {
	return [2]int32{int32(math.Floor(c.X / g.size)), int32(math.Floor(c.Y / g.size))}
}

func (g *grid) add(c latency.Coord, id int) {
	k := g.key(c)
	g.buckets[k] = append(g.buckets[k], id)
}

// nearestWithin returns the stored id nearest to c among those with
// geomDist ≤ r (r must be ≤ g.size), or -1. pts maps ids to coordinates.
func (g *grid) nearestWithin(c latency.Coord, r float64, pts []latency.Coord) (int, float64) {
	k := g.key(c)
	best, bestD := -1, math.Inf(1)
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			for _, id := range g.buckets[[2]int32{k[0] + dx, k[1] + dy}] {
				if d := geomDist(c, pts[id]); d < bestD {
					best, bestD = id, d
				}
			}
		}
	}
	if best == -1 || bestD > r {
		return -1, 0
	}
	return best, bestD
}

// nearest returns the stored id nearest to c with no radius bound,
// expanding bucket rings outward until no closer point can exist: every
// point in an unvisited ring ≥ ring is at X–Y distance > (ring−1)·size.
func (g *grid) nearest(c latency.Coord, pts []latency.Coord) int {
	k := g.key(c)
	best, bestD := -1, math.Inf(1)
	for ring := int32(0); ; ring++ {
		if best != -1 && float64(ring-1)*g.size > bestD {
			return best
		}
		scan := func(bk [2]int32) {
			for _, id := range g.buckets[bk] {
				if d := geomDist(c, pts[id]); d < bestD {
					best, bestD = id, d
				}
			}
		}
		if ring == 0 {
			scan(k)
		} else {
			for d := -ring; d <= ring; d++ {
				scan([2]int32{k[0] + d, k[1] - ring})
				scan([2]int32{k[0] + d, k[1] + ring})
			}
			for d := -ring + 1; d <= ring-1; d++ {
				scan([2]int32{k[0] - ring, k[1] + d})
				scan([2]int32{k[0] + ring, k[1] + d})
			}
		}
		// Callers insert at least one point, so some ring always finds a
		// candidate and the cutoff above eventually fires.
	}
}

// Cluster aggregates clients into at most maxCells cells: a greedy
// radius-r covering seeds the centers (r grows geometrically until the
// covering fits), then kmeansIters rounds of Lloyd refinement re-center
// them. With len(clients) ≤ maxCells every client becomes its own
// singleton cell (Rho = 0), making the reduced instance identical to the
// direct one — the k → n convergence case.
func Cluster(clients []latency.Coord, maxCells, kmeansIters int) ([]Cell, error) {
	n := len(clients)
	if n == 0 {
		return nil, fmt.Errorf("scale: no clients to cluster")
	}
	if maxCells < 1 {
		return nil, fmt.Errorf("scale: maxCells = %d, want >= 1", maxCells)
	}
	if n <= maxCells {
		cells := make([]Cell, n)
		for i := range clients {
			cells[i] = Cell{Rep: clients[i], Members: []int{i}}
		}
		return cells, nil
	}

	centers, radius := cover(clients, maxCells)
	member := lloyd(clients, centers, radius, kmeansIters)
	return finalize(clients, centers, member), nil
}

// cover runs the greedy radius-r covering: clients in index order either
// join the nearest existing center within r or found a new center at
// their own position. The initial r, diag/(2·√maxCells), is what a
// uniform spread of maxCells disks needs to tile the bounding box; r
// grows ×1.6 and the covering restarts while it produces too many
// centers (a large enough r always yields a single center, so the retry
// loop terminates).
func cover(clients []latency.Coord, maxCells int) (centers []latency.Coord, radius float64) {
	lo := latency.Coord{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := latency.Coord{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for _, c := range clients {
		lo.X, lo.Y, lo.Z = math.Min(lo.X, c.X), math.Min(lo.Y, c.Y), math.Min(lo.Z, c.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, c.X), math.Max(hi.Y, c.Y), math.Max(hi.Z, c.Z)
	}
	diag := geomDist(lo, hi)
	r := diag / (2 * math.Sqrt(float64(maxCells)))
	if r <= 0 {
		// All clients geometrically coincident: a single cell covers them.
		return []latency.Coord{clients[0]}, 1
	}
	for {
		g := newGrid(r)
		centers = centers[:0]
		ok := true
		for _, c := range clients {
			if id, _ := g.nearestWithin(c, r, centers); id >= 0 {
				continue
			}
			if len(centers) == maxCells {
				ok = false
				break
			}
			centers = append(centers, c)
			g.add(c, len(centers)-1)
		}
		if ok {
			return centers, r
		}
		r *= 1.6
	}
}

// lloyd refines centers with k-means rounds: assign every client to its
// geometrically nearest center, then move each center to its members'
// centroid (mean height included, so reps keep a realistic access
// delay). Returns the final membership. radius seeds the search grid's
// bucket size; the unbounded ring search keeps reassignment correct even
// when centroids drift apart.
func lloyd(clients []latency.Coord, centers []latency.Coord, radius float64, iters int) []int {
	n, k := len(clients), len(centers)
	member := make([]int, n)
	sumX := make([]float64, k)
	sumY := make([]float64, k)
	sumZ := make([]float64, k)
	sumH := make([]float64, k)
	count := make([]int, k)

	for it := 0; it <= iters; it++ {
		g := newGrid(radius)
		for id, c := range centers {
			g.add(c, id)
		}
		for i, c := range clients {
			member[i] = g.nearest(c, centers)
		}
		if it == iters {
			return member
		}
		for j := 0; j < k; j++ {
			sumX[j], sumY[j], sumZ[j], sumH[j], count[j] = 0, 0, 0, 0, 0
		}
		for i, c := range clients {
			j := member[i]
			sumX[j] += c.X
			sumY[j] += c.Y
			sumZ[j] += c.Z
			sumH[j] += c.H
			count[j]++
		}
		for j := 0; j < k; j++ {
			if count[j] == 0 {
				continue // keep the old center; finalize drops it if still empty
			}
			f := float64(count[j])
			centers[j] = latency.Coord{X: sumX[j] / f, Y: sumY[j] / f, Z: sumZ[j] / f, H: sumH[j] / f}
		}
	}
	return member
}

// finalize builds the Cell list: reps are the member centroids (mean
// height) and Rho the maximum member→rep distance under the full
// coordinate metric — geometry plus both heights, since that is the
// detour the expansion certificate charges. Empty centers are dropped.
func finalize(clients []latency.Coord, centers []latency.Coord, member []int) []Cell {
	k := len(centers)
	cells := make([]Cell, k)
	for i, j := range member {
		cells[j].Members = append(cells[j].Members, i)
		c := clients[i]
		cells[j].Rep.X += c.X
		cells[j].Rep.Y += c.Y
		cells[j].Rep.Z += c.Z
		cells[j].Rep.H += c.H
	}
	out := cells[:0]
	for j := range cells {
		m := len(cells[j].Members)
		if m == 0 {
			continue
		}
		f := float64(m)
		cells[j].Rep.X /= f
		cells[j].Rep.Y /= f
		cells[j].Rep.Z /= f
		cells[j].Rep.H /= f
		for _, i := range cells[j].Members {
			if d := clients[i].LatencyTo(cells[j].Rep); d > cells[j].Rho {
				cells[j].Rho = d
			}
		}
		out = append(out, cells[j])
	}
	return out
}
