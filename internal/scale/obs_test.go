package scale

import (
	"testing"

	"diacap/internal/obs"
)

func TestPipelineRecordsMetrics(t *testing.T) {
	clients := testCoords(t, 400, 9)
	servers := testCoords(t, 8, 10)
	reg := obs.NewRegistry()
	res, err := AssignCoords(clients, Options{
		Servers:        servers,
		MaxCells:       50,
		Workers:        4,
		RandomRestarts: 2, // widen the job pool past the worker count
		Metrics:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	if v := reg.Gauge("diacap_scale_clients", "").Value(); v != 400 {
		t.Errorf("clients gauge = %g, want 400", v)
	}
	if v := reg.Gauge("diacap_scale_cells", "").Value(); v != float64(res.Cells) {
		t.Errorf("cells gauge = %g, result has %d", v, res.Cells)
	}
	if v := reg.Gauge("diacap_scale_certified_d_ms", "").Value(); v != res.CertifiedD {
		t.Errorf("certified-D gauge = %g, result %g", v, res.CertifiedD)
	}
	gap := reg.Gauge("diacap_scale_cert_gap_ms", "").Value()
	if want := res.CertifiedD - res.AuditedD; gap != want {
		t.Errorf("cert-gap gauge = %g, want %g", gap, want)
	}
	if gap < -eps {
		t.Errorf("certificate slack is negative: %g", gap)
	}
	if v := reg.Gauge("diacap_scale_solver_workers", "").Value(); v != 4 {
		t.Errorf("workers gauge = %g, want 4", v)
	}
	if v := reg.Gauge("diacap_scale_solver_jobs", "").Value(); v < 5 {
		t.Errorf("jobs gauge = %g, want >= 5 (3 algorithms + 2 restarts)", v)
	}
	if v := reg.Gauge("diacap_scale_worker_utilization", "").Value(); v < 0 || v > 1 {
		t.Errorf("utilization gauge = %g, want within [0,1]", v)
	}
	for _, stage := range []string{"cluster", "solve", "expand"} {
		h := reg.Histogram("diacap_scale_stage_seconds", "",
			obs.SecondsBuckets, obs.L("stage", stage))
		if h.Count() != 1 {
			t.Errorf("stage %q: %d observations, want 1", stage, h.Count())
		}
	}
}

func TestPipelineWithoutMetrics(t *testing.T) {
	// Metrics nil must stay the default and change nothing about the
	// result (guards against instrumentation leaking into behaviour).
	clients := testCoords(t, 200, 11)
	servers := testCoords(t, 5, 12)
	plain, err := AssignCoords(clients, Options{Servers: servers, MaxCells: 30})
	if err != nil {
		t.Fatal(err)
	}
	metered, err := AssignCoords(clients, Options{Servers: servers, MaxCells: 30, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.CertifiedD != metered.CertifiedD || plain.Cells != metered.Cells {
		t.Errorf("metrics changed the pipeline result: %+v vs %+v", plain, metered)
	}
	for i := range plain.Assignment {
		if plain.Assignment[i] != metered.Assignment[i] {
			t.Fatalf("assignment differs at client %d with metrics attached", i)
		}
	}
}
