package scale

import (
	"testing"

	"diacap/internal/core"
	"diacap/internal/latency"
)

// benchCoords memoizes the 10k-client population across benchmark
// iterations and sub-benchmarks.
var benchCoords []latency.Coord

func benchPopulation(b *testing.B) []latency.Coord {
	b.Helper()
	if benchCoords == nil {
		cs, err := latency.GenerateCoords(latency.DefaultConfig(10000), 1)
		if err != nil {
			b.Fatal(err)
		}
		benchCoords = cs
	}
	return benchCoords
}

// BenchmarkAssignCoords10k is the CI smoke benchmark: the full
// pipeline (cluster, reduced solve, expansion, exact D) on 10k clients
// and 32 servers. Run with -benchtime=1x for a correctness-plus-liveness
// check that stays under a second.
func BenchmarkAssignCoords10k(b *testing.B) {
	clients := benchPopulation(b)
	servers, err := PlaceServers(clients, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	caps := core.UniformCapacities(32, 2*(len(clients)/32+1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := AssignCoords(clients, Options{
			Servers:    servers,
			Capacities: caps,
			Seed:       1,
			AuditPairs: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.ExactD > res.CertifiedD {
			b.Fatalf("certificate violated: exact %v > certified %v", res.ExactD, res.CertifiedD)
		}
	}
}

// BenchmarkCluster10k isolates the clustering stage, the dominant cost
// at million scale.
func BenchmarkCluster10k(b *testing.B) {
	clients := benchPopulation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := Cluster(clients, DefaultMaxCells, 8)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}
