package scale

import (
	"math"
	"reflect"
	"testing"

	"diacap/internal/assign"
	"diacap/internal/core"
	"diacap/internal/latency"
)

const eps = 1e-9

// testCoords generates a deterministic synthetic client population.
func testCoords(t testing.TB, n int, seed int64) []latency.Coord {
	t.Helper()
	cs, err := latency.GenerateCoords(latency.DefaultConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// directInstance materializes the coordinate metric as a full matrix
// instance (nodes: servers then clients) — feasible only at test sizes.
func directInstance(t testing.TB, clients, servers []latency.Coord) *core.Instance {
	t.Helper()
	all := append(append([]latency.Coord(nil), servers...), clients...)
	m := latency.CoordsToMatrix(all)
	serverIdx := make([]int, len(servers))
	clientIdx := make([]int, len(clients))
	for i := range serverIdx {
		serverIdx[i] = i
	}
	for i := range clientIdx {
		clientIdx[i] = len(servers) + i
	}
	in, err := core.NewInstanceTrusted(m, serverIdx, clientIdx)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestClusterPartitions(t *testing.T) {
	clients := testCoords(t, 3000, 1)
	for _, maxCells := range []int{10, 100, 500} {
		cells, err := Cluster(clients, maxCells, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) > maxCells {
			t.Fatalf("maxCells=%d: got %d cells", maxCells, len(cells))
		}
		seen := make([]bool, len(clients))
		for _, cell := range cells {
			if len(cell.Members) == 0 {
				t.Fatal("empty cell survived finalize")
			}
			if cell.Rho < 0 {
				t.Fatalf("negative rho %v", cell.Rho)
			}
			for _, i := range cell.Members {
				if seen[i] {
					t.Fatalf("client %d in two cells", i)
				}
				seen[i] = true
				if d := clients[i].LatencyTo(cell.Rep); d > cell.Rho+eps {
					t.Fatalf("member %d at %v exceeds rho %v", i, d, cell.Rho)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("maxCells=%d: client %d unassigned to any cell", maxCells, i)
			}
		}
	}
}

func TestClusterSingletons(t *testing.T) {
	clients := testCoords(t, 50, 2)
	cells, err := Cluster(clients, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 50 {
		t.Fatalf("got %d cells, want 50 singletons", len(cells))
	}
	for i, cell := range cells {
		if cell.Rho != 0 || len(cell.Members) != 1 || cell.Members[0] != i {
			t.Fatalf("cell %d is not the singleton of client %d: %+v", i, i, cell)
		}
	}
}

// TestCertificateHolds is the core property: on every run,
// AuditedD ≤ ExactD ≤ CertifiedD ≤ DCells + 2·MaxRho.
func TestCertificateHolds(t *testing.T) {
	for _, n := range []int{64, 400, 1500} {
		clients := testCoords(t, n, int64(n))
		servers, err := PlaceServers(clients, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := AssignCoords(clients, Options{Servers: servers, MaxCells: n / 8, RandomRestarts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.AuditedD > res.ExactD+eps {
			t.Errorf("n=%d: AuditedD %v > ExactD %v", n, res.AuditedD, res.ExactD)
		}
		if res.ExactD > res.CertifiedD+eps {
			t.Errorf("n=%d: ExactD %v > CertifiedD %v", n, res.ExactD, res.CertifiedD)
		}
		if naive := res.DCells + 2*res.MaxRho; res.CertifiedD > naive+eps {
			t.Errorf("n=%d: CertifiedD %v > DCells+2·MaxRho %v", n, res.CertifiedD, naive)
		}
		sum := 0
		for _, l := range res.Loads {
			sum += l
		}
		if sum != n || len(res.Assignment) != n {
			t.Errorf("n=%d: %d clients assigned, loads sum %d", n, len(res.Assignment), sum)
		}
	}
}

// TestNeverBeatsOptimum checks the pipeline's exact client D against the
// brute-force optimum of the direct instance on tiny populations.
func TestNeverBeatsOptimum(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		n := 8 + trial
		clients := testCoords(t, n, int64(trial+40))
		servers, err := PlaceServers(clients, 3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		in := directInstance(t, clients, servers)
		_, optimal, err := assign.BruteForce{}.Solve(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, maxCells := range []int{3, n / 2, n} {
			res, err := AssignCoords(clients, Options{Servers: servers, MaxCells: maxCells})
			if err != nil {
				t.Fatal(err)
			}
			if res.ExactD < optimal-eps {
				t.Errorf("trial %d maxCells=%d: pipeline D %v beats optimum %v", trial, maxCells, res.ExactD, optimal)
			}
		}
	}
}

// TestConvergesToDirect checks the k → n limit: with singleton cells the
// pipeline must return exactly what the best direct heuristic returns on
// the materialized instance.
func TestConvergesToDirect(t *testing.T) {
	n := 96
	clients := testCoords(t, n, 5)
	servers, err := PlaceServers(clients, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssignCoords(clients, Options{Servers: servers, MaxCells: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != n || res.MaxRho != 0 {
		t.Fatalf("expected %d singleton cells with rho 0, got %d cells, MaxRho %v", n, res.Cells, res.MaxRho)
	}
	if math.Abs(res.ExactD-res.CertifiedD) > eps || math.Abs(res.ExactD-res.DCells) > eps {
		t.Errorf("singleton run: ExactD %v, CertifiedD %v, DCells %v should coincide", res.ExactD, res.CertifiedD, res.DCells)
	}

	in := directInstance(t, clients, servers)
	best := math.Inf(1)
	for _, alg := range []assign.Algorithm{assign.NearestServer{}, assign.LongestFirstBatch{}, assign.Greedy{}} {
		a, err := alg.Assign(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if d := in.MaxInteractionPath(a); d < best {
			best = d
		}
	}
	if math.Abs(res.ExactD-best) > 1e-6 {
		t.Errorf("singleton pipeline D %v != best direct heuristic D %v", res.ExactD, best)
	}
}

// TestQualityNearDirect is the acceptance bar: at k = n/4 the clustered
// pipeline stays within 10%% of the best direct LFB/Greedy solve.
func TestQualityNearDirect(t *testing.T) {
	for _, n := range []int{512, 1024} {
		clients := testCoords(t, n, int64(n+7))
		servers, err := PlaceServers(clients, 8, 3)
		if err != nil {
			t.Fatal(err)
		}
		in := directInstance(t, clients, servers)
		best := math.Inf(1)
		for _, alg := range []assign.Algorithm{assign.LongestFirstBatch{}, assign.Greedy{}} {
			a, err := alg.Assign(in, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d := in.MaxInteractionPath(a); d < best {
				best = d
			}
		}
		res, err := AssignCoords(clients, Options{Servers: servers, MaxCells: n / 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExactD > 1.10*best {
			t.Errorf("n=%d k=%d: pipeline D %v exceeds 110%% of direct best %v", n, n/4, res.ExactD, best)
		}
	}
}

// TestCapacitiesRespected checks weighted capacity accounting end to
// end: expanded per-server client counts stay within tight caps.
func TestCapacitiesRespected(t *testing.T) {
	n, u := 900, 6
	clients := testCoords(t, n, 11)
	servers, err := PlaceServers(clients, u, 11)
	if err != nil {
		t.Fatal(err)
	}
	caps := core.UniformCapacities(u, n/u+40)
	res, err := AssignCoords(clients, Options{Servers: servers, Capacities: caps, MaxCells: 150, RandomRestarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, l := range res.Loads {
		if l > caps[k] {
			t.Errorf("server %d carries %d clients, capacity %d", k, l, caps[k])
		}
	}
}

// TestDeterministicAcrossWorkers pins the worker pool's deterministic
// best-pick: fan-out width must not change the result. Run with -race
// this is also the pool's data-race test.
func TestDeterministicAcrossWorkers(t *testing.T) {
	clients := testCoords(t, 600, 21)
	servers, err := PlaceServers(clients, 6, 21)
	if err != nil {
		t.Fatal(err)
	}
	opts := func(workers int) Options {
		return Options{Servers: servers, MaxCells: 100, RandomRestarts: 6, Seed: 4, Workers: workers}
	}
	r1, err := AssignCoords(clients, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := AssignCoords(clients, opts(8))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Algorithm != r8.Algorithm || !reflect.DeepEqual(r1.Assignment, r8.Assignment) {
		t.Errorf("worker count changed the result: %q vs %q", r1.Algorithm, r8.Algorithm)
	}
}

func TestPlaceServers(t *testing.T) {
	clients := testCoords(t, 300, 31)
	s1, err := PlaceServers(clients, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 10 {
		t.Fatalf("got %d servers, want 10", len(s1))
	}
	s2, err := PlaceServers(clients, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("PlaceServers is not deterministic per seed")
	}
	if _, err := PlaceServers(clients, 0, 1); err == nil {
		t.Error("PlaceServers accepted u = 0")
	}
	if _, err := PlaceServers(nil, 3, 1); err == nil {
		t.Error("PlaceServers accepted an empty population")
	}
}

func TestAssignCoordsValidation(t *testing.T) {
	clients := testCoords(t, 40, 51)
	servers, err := PlaceServers(clients, 3, 51)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssignCoords(nil, Options{Servers: servers}); err == nil {
		t.Error("accepted empty client set")
	}
	if _, err := AssignCoords(clients, Options{}); err == nil {
		t.Error("accepted empty server set")
	}
	if _, err := AssignCoords(clients, Options{Servers: servers, Algorithms: []string{"nope"}}); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if _, err := AssignCoords(clients, Options{Servers: servers, Algorithms: []string{"Distributed-Greedy"}}); err == nil {
		t.Error("accepted a non-weighted algorithm")
	}
	bad := append([]latency.Coord(nil), clients...)
	bad[3].H = -1
	if _, err := AssignCoords(bad, Options{Servers: servers}); err == nil {
		t.Error("accepted a negative-height client")
	}
	caps := core.UniformCapacities(len(servers), 1)
	if _, err := AssignCoords(clients, Options{Servers: servers, Capacities: caps}); err == nil {
		t.Error("accepted infeasible capacities")
	}
}
