// Package scale assigns very large client populations — a million and
// beyond — to servers without ever materializing the O(n²) latency
// matrix the paper's algorithms consume. The pipeline:
//
//  1. Ingest clients as network coordinates (latency.Coord, the Vivaldi
//     height-vector model): O(n) memory, any pairwise latency on demand.
//  2. Aggregate clients into k ≤ MaxCells cells — a greedy radius-r
//     covering seeded by a spatial grid, refined by k-means — where each
//     cell records its member count m and radius ρ (max member→rep
//     latency).
//  3. Solve the reduced (U + k)-node instance with the paper's
//     heuristics, capacity-weighted (a cell of m clients consumes m
//     capacity), fanning per-algorithm/per-seed solves over a worker
//     pool and keeping the certified-best candidate.
//  4. Expand back to clients, with a certificate: because the
//     coordinate metric satisfies the triangle inequality, every
//     member's path detours through its rep at a cost of at most ρ per
//     endpoint, so D_clients ≤ CertifiedD ≤ D_cells + 2·max ρ. The
//     exact client-level D (O(n + U²) via eccentricities) and an
//     audited random subsample are reported alongside.
//
// The reduction is the standard coarsening move for scaling
// combinatorial heuristics; the coordinate metric is what turns it from
// a hope into a certificate, which is why this pipeline ingests
// coordinates rather than raw matrices.
package scale

import (
	"fmt"
	"math/rand"
	"time"

	"diacap/internal/assign"
	"diacap/internal/core"
	"diacap/internal/latency"
	"diacap/internal/obs"
)

// DefaultMaxCells bounds the reduced instance when Options.MaxCells is
// zero: 2000 cells keep the reduced solve in the regime the paper's
// heuristics were measured in, while a million clients still average
// 500 members per cell.
const DefaultMaxCells = 2000

// Options configures AssignCoords.
type Options struct {
	// Servers are the server coordinates (required). PlaceServers can
	// derive them from the client population.
	Servers []latency.Coord
	// Capacities optionally limits clients per server, aligned with
	// Servers, in client units (a cell of m clients consumes m).
	Capacities core.Capacities
	// MaxCells bounds the reduced instance size (0 = DefaultMaxCells).
	// With MaxCells ≥ len(clients) every client is its own cell and the
	// pipeline degenerates to a direct solve.
	MaxCells int
	// KMeansIters is the number of Lloyd refinement rounds after the
	// greedy covering (0 = 8; negative disables refinement).
	KMeansIters int
	// Algorithms names the solvers for the reduced instance; each must
	// be a WeightedAlgorithm (default: Nearest-Server,
	// Longest-First-Batch, Greedy).
	Algorithms []string
	// RandomRestarts adds that many seeded weighted-random candidates to
	// the solver pool — cheap diversity that occasionally wins on
	// degenerate geometries (default 0).
	RandomRestarts int
	// Seed drives the random restarts and the audit sample (the
	// clustering and default solvers are deterministic).
	Seed int64
	// Workers bounds the solver pool fan-out (0 = GOMAXPROCS).
	Workers int
	// AuditPairs is the size of the random pair subsample measured
	// against the expanded assignment (0 = 10000; negative disables).
	AuditPairs int
	// Metrics, if non-nil, receives pipeline telemetry: cell count and
	// radii, stage timings, worker-pool utilization, and the certified
	// bound vs. audited D gap.
	Metrics *obs.Registry
}

func (o *Options) fill() {
	if o.MaxCells == 0 {
		o.MaxCells = DefaultMaxCells
	}
	if o.KMeansIters == 0 {
		o.KMeansIters = 8
	}
	if o.KMeansIters < 0 {
		o.KMeansIters = 0
	}
	if len(o.Algorithms) == 0 {
		o.Algorithms = []string{"Nearest-Server", "Longest-First-Batch", "Greedy"}
	}
	if o.AuditPairs == 0 {
		o.AuditPairs = 10000
	}
	if o.AuditPairs < 0 {
		o.AuditPairs = 0
	}
}

// Result is a scaled assignment with its quality certificate.
type Result struct {
	// Assignment[i] is the server index for client i.
	Assignment []int
	// Algorithm is the reduced-instance solver that won.
	Algorithm string
	// Cells is the reduced instance size k.
	Cells int
	// MaxRho is the largest cell radius (ms).
	MaxRho float64
	// DCells is the cell-level D of the winning reduced assignment.
	DCells float64
	// CertifiedD is the certified upper bound on the client-level D:
	// ExactD ≤ CertifiedD ≤ DCells + 2·MaxRho, by the triangle
	// inequality of the coordinate metric.
	CertifiedD float64
	// ExactD is the exact client-level D under the coordinate metric.
	ExactD float64
	// AuditedD is the maximum interaction path over AuditPairs random
	// client pairs — an independent spot-check, never above ExactD.
	AuditedD float64
	// AuditPairs is the number of sampled pairs behind AuditedD.
	AuditPairs int
	// Loads[k] is the number of clients on server k.
	Loads []int
	// ClusterMs, SolveMs, ExpandMs break down the wall-clock time.
	ClusterMs, SolveMs, ExpandMs float64
}

// AssignCoords runs the full pipeline: cluster, solve, expand, certify.
func AssignCoords(clients []latency.Coord, opts Options) (*Result, error) {
	opts.fill()
	if len(clients) == 0 {
		return nil, fmt.Errorf("scale: no clients")
	}
	if len(opts.Servers) == 0 {
		return nil, fmt.Errorf("scale: no servers (set Options.Servers, e.g. via PlaceServers)")
	}
	for i, c := range clients {
		if err := c.Valid(); err != nil {
			return nil, fmt.Errorf("scale: client %d: %w", i, err)
		}
	}
	for k, s := range opts.Servers {
		if err := s.Valid(); err != nil {
			return nil, fmt.Errorf("scale: server %d: %w", k, err)
		}
	}
	algorithms := make([]assign.WeightedAlgorithm, 0, len(opts.Algorithms))
	for _, name := range opts.Algorithms {
		alg, err := assign.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("scale: %w", err)
		}
		w, ok := alg.(assign.WeightedAlgorithm)
		if !ok {
			return nil, fmt.Errorf("scale: algorithm %q cannot solve weighted reduced instances", name)
		}
		algorithms = append(algorithms, w)
	}

	start := time.Now()
	cells, err := Cluster(clients, opts.MaxCells, opts.KMeansIters)
	if err != nil {
		return nil, err
	}
	clusterMs := msSince(start)

	start = time.Now()
	red, err := buildReduced(opts.Servers, cells)
	if err != nil {
		return nil, err
	}
	best, _, err := red.solveAll(algorithms, opts.Capacities, opts.Seed, opts.RandomRestarts, opts.Workers, opts.Metrics)
	if err != nil {
		return nil, err
	}
	solveMs := msSince(start)

	start = time.Now()
	a := expand(len(clients), cells, best.a)
	res := &Result{
		Assignment: a,
		Algorithm:  best.name,
		Cells:      len(cells),
		DCells:     red.in.MaxInteractionPath(best.a),
		CertifiedD: best.certD,
		ExactD:     exactD(clients, opts.Servers, a),
		AuditPairs: opts.AuditPairs,
		Loads:      make([]int, len(opts.Servers)),
		ClusterMs:  clusterMs,
		SolveMs:    solveMs,
	}
	for _, cell := range cells {
		if cell.Rho > res.MaxRho {
			res.MaxRho = cell.Rho
		}
	}
	for _, s := range a {
		res.Loads[s]++
	}
	if opts.AuditPairs > 0 {
		res.AuditedD = auditD(clients, opts.Servers, a, opts.AuditPairs, opts.Seed)
	}
	res.ExpandMs = msSince(start)
	recordPipeline(opts.Metrics, len(clients), res)
	return res, nil
}

// recordPipeline publishes one finished pipeline run: sizes, the
// certificate chain (cell-level D ≤ certified bound, audited D below the
// exact value), and per-stage timings. The bound-vs-audit gap is the
// pipeline's accuracy margin: how much the triangle-inequality
// certificate over-states the D actually measured on sampled clients.
// Pipeline metric names and help strings, package-level consts per the
// dialint/obs-preregister schema discipline.
const (
	nScaleClients  = "diacap_scale_clients"
	hScaleClients  = "Client population of the last pipeline run."
	nScaleCells    = "diacap_scale_cells"
	hScaleCells    = "Reduced-instance cell count of the last pipeline run."
	nScaleMaxRho   = "diacap_scale_max_rho_ms"
	hScaleMaxRho   = "Largest cell radius of the last pipeline run, in ms."
	nScaleCertD    = "diacap_scale_certified_d_ms"
	hScaleCertD    = "Certified upper bound on the client-level D, in ms."
	nScaleAuditD   = "diacap_scale_audited_d_ms"
	hScaleAuditD   = "Maximum interaction path over the audited client-pair subsample, in ms."
	nScaleCertGap  = "diacap_scale_cert_gap_ms"
	hScaleCertGap  = "Certified bound minus audited D, in ms — the certificate's slack."
	nScaleStageSec = "diacap_scale_stage_seconds"
	hScaleStageSec = "Wall-clock time per pipeline stage in seconds."
)

func recordPipeline(reg *obs.Registry, numClients int, res *Result) {
	if reg == nil {
		return
	}
	reg.Gauge(nScaleClients, hScaleClients).Set(float64(numClients))
	reg.Gauge(nScaleCells, hScaleCells).Set(float64(res.Cells))
	reg.Gauge(nScaleMaxRho, hScaleMaxRho).Set(res.MaxRho)
	reg.Gauge(nScaleCertD, hScaleCertD).Set(res.CertifiedD)
	reg.Gauge(nScaleAuditD, hScaleAuditD).Set(res.AuditedD)
	reg.Gauge(nScaleCertGap, hScaleCertGap).Set(res.CertifiedD - res.AuditedD)
	observeStage(reg, "cluster", res.ClusterMs)
	observeStage(reg, "solve", res.SolveMs)
	observeStage(reg, "expand", res.ExpandMs)
}

// observeStage records one stage duration; the three stages are unrolled
// at the call site so instrument resolution stays out of loops.
func observeStage(reg *obs.Registry, stage string, ms float64) {
	reg.Histogram(nScaleStageSec, hScaleStageSec,
		obs.SecondsBuckets, obs.L("stage", stage)).Observe(ms / 1000)
}

// PlaceServers picks u server coordinates from the client population by
// greedy farthest-point traversal (the 2-approximate K-center heuristic,
// the coordinate-space analog of placement.KCenterB): the first server
// is a seeded random client, each next one the client farthest from all
// chosen so far. Populations beyond maxSample (20000) are subsampled
// first, keeping the scan linear in u.
func PlaceServers(clients []latency.Coord, u int, seed int64) ([]latency.Coord, error) {
	if u < 1 {
		return nil, fmt.Errorf("scale: u = %d servers, want >= 1", u)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("scale: no clients to place servers over")
	}
	const maxSample = 20000
	rng := rand.New(rand.NewSource(seed))
	pool := clients
	if len(pool) > maxSample {
		pool = make([]latency.Coord, maxSample)
		for i, j := range rng.Perm(len(clients))[:maxSample] {
			pool[i] = clients[j]
		}
	}
	if u > len(pool) {
		return nil, fmt.Errorf("scale: u = %d servers exceeds %d candidate clients", u, len(pool))
	}

	out := make([]latency.Coord, 0, u)
	minDist := make([]float64, len(pool))
	pick := rng.Intn(len(pool))
	for len(out) < u {
		out = append(out, pool[pick])
		next, nextD := -1, -1.0
		for i := range pool {
			d := pool[i].LatencyTo(out[len(out)-1])
			if len(out) == 1 || d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > nextD {
				next, nextD = i, minDist[i]
			}
		}
		pick = next
	}
	return out, nil
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}
