package scale

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// pipelineFingerprint renders everything about a Result except the
// wall-clock timings, which legitimately vary run to run.
func pipelineFingerprint(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s cells=%d maxRho=%v dCells=%v certified=%v exact=%v audited=%v auditPairs=%d\n",
		r.Algorithm, r.Cells, r.MaxRho, r.DCells, r.CertifiedD, r.ExactD, r.AuditedD, r.AuditPairs)
	fmt.Fprintf(&b, "assignment=%v\n", r.Assignment)
	fmt.Fprintf(&b, "loads=%v\n", r.Loads)
	return b.String()
}

// TestPipelineDeterminism: the full cluster→solve→expand→certify
// pipeline must be byte-identical for a fixed seed across repeated runs,
// GOMAXPROCS settings, and worker-pool widths — the solver pool fans out
// across goroutines, and the winner pick must not depend on completion
// order.
func TestPipelineDeterminism(t *testing.T) {
	clients := testCoords(t, 3000, 11)
	servers, err := PlaceServers(clients, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) string {
		res, err := AssignCoords(clients, Options{
			Servers:        servers,
			MaxCells:       120,
			Seed:           5,
			Workers:        workers,
			RandomRestarts: 3,
			AuditPairs:     2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pipelineFingerprint(res)
	}

	want := run(4)
	if again := run(4); again != want {
		t.Fatalf("two identical runs diverge:\n--- first\n%s--- second\n%s", want, again)
	}
	if got := run(1); got != want {
		t.Fatalf("Workers=1 diverges from Workers=4:\n--- baseline\n%s--- got\n%s", want, got)
	}
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		got := run(4)
		runtime.GOMAXPROCS(prev)
		if got != want {
			t.Fatalf("GOMAXPROCS=%d diverges:\n--- baseline\n%s--- got\n%s", procs, want, got)
		}
	}
}
