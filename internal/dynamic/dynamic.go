// Package dynamic studies client assignment under churn: clients join and
// leave over time, and the system must keep the maximum interaction-path
// length D low *online*, without re-solving from scratch on every event.
//
// The paper motivates exactly this setting in its related-work discussion:
// "since client assignment deals with only software connections between
// clients and servers, it can be adjusted promptly to adapt to system
// dynamics" — in contrast to server placement, which is planned long-term.
// This package provides a churn workload generator, several online
// strategies built on core.Evaluator's O(|S|) incremental moves, and a
// simulator that scores strategies by time-averaged D, worst-case D, and
// disruption (how many already-connected clients get reassigned, since
// every reassignment means a reconnect for a live participant).
package dynamic

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"diacap/internal/assign"
	"diacap/internal/core"
)

const eps = 1e-9

// ErrCapacityExhausted reports that a join (or forced rejoin) could not
// be placed because every server is at capacity. It is the typed
// rejection every online strategy must produce for capacity-infeasible
// churn bursts — a flash crowd larger than the remaining capacity must
// surface as this error, never as a panic or a silently
// capacity-violating assignment.
var ErrCapacityExhausted = errors.New("dynamic: no server has remaining capacity")

// EventKind distinguishes joins from leaves.
type EventKind int

// Event kinds.
const (
	Join EventKind = iota
	Leave
)

func (k EventKind) String() string {
	if k == Join {
		return "join"
	}
	return "leave"
}

// Event is one churn event: client (instance-local index) joins or leaves
// at a simulation time.
type Event struct {
	Time   float64
	Kind   EventKind
	Client int
}

// ChurnConfig parameterizes the churn workload.
type ChurnConfig struct {
	// NumClients is the size of the client pool (instance-local indices).
	NumClients int
	// Horizon is the simulated duration (ms).
	Horizon float64
	// MeanInterarrival is the mean time between joins (ms).
	MeanInterarrival float64
	// MeanSession is the mean session length (ms), exponential.
	MeanSession float64
	// InitialActive clients are joined at time 0.
	InitialActive int
}

// Validate reports whether the configuration is usable.
func (c ChurnConfig) Validate() error {
	switch {
	case c.NumClients <= 0:
		return errors.New("dynamic: NumClients must be positive")
	case c.Horizon <= 0:
		return errors.New("dynamic: Horizon must be positive")
	case c.MeanInterarrival <= 0 || c.MeanSession <= 0:
		return errors.New("dynamic: mean interarrival and session must be positive")
	case c.InitialActive < 0 || c.InitialActive > c.NumClients:
		return fmt.Errorf("dynamic: InitialActive %d outside [0, %d]", c.InitialActive, c.NumClients)
	}
	return nil
}

// GenerateChurn produces a time-sorted event trace: InitialActive joins at
// time 0, then Poisson joins of idle clients with exponential session
// lengths, truncated at the horizon (sessions outlasting the horizon
// simply never leave).
func GenerateChurn(cfg ChurnConfig, seed int64) ([]Event, error) {
	if cfg.NumClients <= 0 {
		return nil, errors.New("dynamic: NumClients must be positive")
	}
	pool := make([]int, cfg.NumClients)
	for i := range pool {
		pool[i] = i
	}
	return GenerateChurnPool(pool, cfg, seed)
}

// GenerateChurnPool is GenerateChurn over an explicit client pool: the
// generated events reference the given instance-local client indices
// instead of [0, NumClients). Scenario drivers use it to run background
// churn on one subset of the population while reserving another (e.g.
// the clients nearest a flash-crowd epicenter) for scripted bursts.
// cfg.NumClients must match len(pool).
func GenerateChurnPool(pool []int, cfg ChurnConfig, seed int64) ([]Event, error) {
	if cfg.NumClients != len(pool) {
		return nil, fmt.Errorf("dynamic: NumClients %d != pool size %d", cfg.NumClients, len(pool))
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var events []Event
	idle := append([]int(nil), pool...)
	// pickIdle removes and returns a random idle client (-1 when none).
	pickIdle := func() int {
		if len(idle) == 0 {
			return -1
		}
		i := rng.Intn(len(idle))
		c := idle[i]
		idle[i] = idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		return c
	}

	var departures []Event
	join := func(c int, at float64) {
		events = append(events, Event{Time: at, Kind: Join, Client: c})
		end := at + rng.ExpFloat64()*cfg.MeanSession
		if end < cfg.Horizon {
			departures = append(departures, Event{Time: end, Kind: Leave, Client: c})
		}
	}
	for i := 0; i < cfg.InitialActive; i++ {
		if c := pickIdle(); c >= 0 {
			join(c, 0)
		}
	}
	for t := rng.ExpFloat64() * cfg.MeanInterarrival; t < cfg.Horizon; t += rng.ExpFloat64() * cfg.MeanInterarrival {
		// A client can rejoin only after leaving; move departures ≤ t
		// into the event trace and back into the idle pool first.
		sort.Slice(departures, func(i, j int) bool { return departures[i].Time < departures[j].Time })
		for len(departures) > 0 && departures[0].Time <= t {
			events = append(events, departures[0])
			idle = append(idle, departures[0].Client)
			departures = departures[1:]
		}
		if c := pickIdle(); c >= 0 {
			join(c, t)
		}
	}
	events = append(events, departures...)
	sort.SliceStable(events, func(i, j int) bool {
		if c := cmp.Compare(events[i].Time, events[j].Time); c != 0 {
			return c < 0
		}
		// Leaves before joins at equal times frees capacity first.
		return events[i].Kind == Leave && events[j].Kind == Join
	})
	return events, nil
}

// Strategy is an online assignment policy.
type Strategy interface {
	// Name identifies the strategy in results.
	Name() string
	// PlaceJoin picks the server for a joining client, given the live
	// evaluator state (read-only use). Returning a saturated server or
	// -1 is an error.
	PlaceJoin(ev *core.Evaluator, caps core.Capacities, client int) int
	// Repair may reassign already-active clients after an event; it
	// returns the client moves it performed (for disruption accounting).
	// It is called after every event with the live evaluator and the
	// event's simulation time.
	Repair(ev *core.Evaluator, caps core.Capacities, now float64) int
}

// NearestJoin joins each client to its nearest unsaturated server and
// never reassigns anyone — the zero-disruption baseline.
//
// Strategies read all geometry from the evaluator they are handed (not
// from a cached instance pointer), so the same strategy value keeps
// working when the simulator re-materializes the instance under
// coordinate drift and hands it a fresh evaluator.
type NearestJoin struct{}

// NewNearestJoin builds the baseline. The instance argument is accepted
// for compatibility and no longer retained.
func NewNearestJoin(*core.Instance) *NearestJoin { return &NearestJoin{} }

// Name implements Strategy.
func (*NearestJoin) Name() string { return "Nearest-Join" }

// PlaceJoin implements Strategy.
func (s *NearestJoin) PlaceJoin(ev *core.Evaluator, caps core.Capacities, client int) int {
	row := ev.Instance().ClientServerRow(client)
	best := -1
	for k := range row {
		if caps != nil && ev.Load(k) >= caps[k] {
			continue
		}
		if best == -1 || row[k] < row[best] {
			best = k
		}
	}
	return best
}

// Repair implements Strategy.
func (*NearestJoin) Repair(*core.Evaluator, core.Capacities, float64) int { return 0 }

// GreedyJoin places each joining client on the unsaturated server that
// minimizes the resulting D (one PeekMove per server); no reassignments.
type GreedyJoin struct{}

// NewGreedyJoin builds the strategy. The instance argument is accepted
// for compatibility and no longer retained.
func NewGreedyJoin(*core.Instance) *GreedyJoin { return &GreedyJoin{} }

// Name implements Strategy.
func (*GreedyJoin) Name() string { return "Greedy-Join" }

// PlaceJoin implements Strategy.
func (s *GreedyJoin) PlaceJoin(ev *core.Evaluator, caps core.Capacities, client int) int {
	best, bestD := -1, math.Inf(1)
	for k := 0; k < ev.Instance().NumServers(); k++ {
		if caps != nil && ev.Load(k) >= caps[k] {
			continue
		}
		if d := ev.PeekMove(client, k); d < bestD-eps {
			best, bestD = k, d
		}
	}
	return best
}

// Repair implements Strategy.
func (*GreedyJoin) Repair(*core.Evaluator, core.Capacities, float64) int { return 0 }

// GreedyJoinRepair is GreedyJoin plus bounded Distributed-Greedy-style
// repair: after each event it moves clients on longest paths to better
// servers, up to MovesPerEvent reassignments, whenever that strictly
// reduces D.
type GreedyJoinRepair struct {
	join *GreedyJoin
	// MovesPerEvent bounds repair reassignments per event (default 2).
	MovesPerEvent int
}

// NewGreedyJoinRepair builds the strategy. The instance argument is
// accepted for compatibility and no longer retained.
func NewGreedyJoinRepair(in *core.Instance, movesPerEvent int) *GreedyJoinRepair {
	if movesPerEvent <= 0 {
		movesPerEvent = 2
	}
	return &GreedyJoinRepair{join: NewGreedyJoin(in), MovesPerEvent: movesPerEvent}
}

// Name implements Strategy.
func (s *GreedyJoinRepair) Name() string {
	return fmt.Sprintf("Greedy-Join+Repair(%d)", s.MovesPerEvent)
}

// PlaceJoin implements Strategy.
func (s *GreedyJoinRepair) PlaceJoin(ev *core.Evaluator, caps core.Capacities, client int) int {
	return s.join.PlaceJoin(ev, caps, client)
}

// Repair implements Strategy.
func (s *GreedyJoinRepair) Repair(ev *core.Evaluator, caps core.Capacities, _ float64) int {
	in := ev.Instance()
	moves := 0
	for moves < s.MovesPerEvent {
		d := ev.D()
		bestC, bestS, bestD := -1, -1, d
		for c := 0; c < in.NumClients(); c++ {
			cur := ev.ServerOf(c)
			if cur == core.Unassigned {
				continue
			}
			if ev.MaxPathInvolving(c) < d-eps {
				continue // not on a longest path
			}
			for k := 0; k < in.NumServers(); k++ {
				if k == cur {
					continue
				}
				if caps != nil && ev.Load(k) >= caps[k] {
					continue
				}
				if nd := ev.PeekMove(c, k); nd < bestD-eps {
					bestC, bestS, bestD = c, k, nd
				}
			}
		}
		if bestC == -1 {
			break
		}
		ev.Move(bestC, bestS)
		moves++
	}
	return moves
}

// PeriodicReoptimize is the heavyweight end of the online spectrum: joins
// are placed greedily, and every Period milliseconds the entire active
// population is re-assigned from scratch with the configured algorithm
// (default Greedy). Every client whose server changes in a re-optimization
// counts as disruption — the cost that the incremental strategies avoid.
type PeriodicReoptimize struct {
	join *GreedyJoin
	// Period between full re-optimizations (virtual ms).
	Period float64
	// Algorithm used for the periodic solve (nil = Greedy).
	Algorithm assign.Algorithm
	lastRun   float64
}

// NewPeriodicReoptimize builds the strategy. The simulator drives its
// clock via the event times it passes to Repair (see Simulate). The
// instance argument is accepted for compatibility and no longer
// retained.
func NewPeriodicReoptimize(in *core.Instance, period float64) *PeriodicReoptimize {
	if period <= 0 {
		period = 500
	}
	return &PeriodicReoptimize{join: NewGreedyJoin(in), Period: period}
}

// Name implements Strategy.
func (s *PeriodicReoptimize) Name() string {
	return fmt.Sprintf("Periodic-Reoptimize(%.0fms)", s.Period)
}

// PlaceJoin implements Strategy.
func (s *PeriodicReoptimize) PlaceJoin(ev *core.Evaluator, caps core.Capacities, client int) int {
	return s.join.PlaceJoin(ev, caps, client)
}

// Repair implements Strategy: when a period has elapsed, re-solve the
// active sub-instance from scratch and apply the new assignment.
func (s *PeriodicReoptimize) Repair(ev *core.Evaluator, caps core.Capacities, now float64) int {
	if now-s.lastRun < s.Period {
		return 0
	}
	s.lastRun = now
	in := ev.Instance()

	// Build the active sub-instance: active clients only, in instance
	// order, mapped back after solving.
	var active []int
	for c := 0; c < in.NumClients(); c++ {
		if ev.ServerOf(c) != core.Unassigned {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return 0
	}
	activeNodes := make([]int, len(active))
	for i, c := range active {
		activeNodes[i] = in.ClientNode(c)
	}
	serverNodes := make([]int, in.NumServers())
	for k := range serverNodes {
		serverNodes[k] = in.ServerNode(k)
	}
	sub, err := core.NewInstanceTrusted(in.Matrix(), serverNodes, activeNodes)
	if err != nil {
		return 0 // keep the current assignment on any internal error
	}
	alg := s.Algorithm
	if alg == nil {
		alg = assign.Greedy{}
	}
	fresh, err := alg.Assign(sub, caps)
	if err != nil {
		return 0
	}
	moves := 0
	for i, c := range active {
		if ev.ServerOf(c) != fresh[i] {
			ev.Move(c, fresh[i])
			moves++
		}
	}
	return moves
}

// Result scores one strategy over one churn trace.
type Result struct {
	Strategy string
	// TimeAvgD is D integrated over time divided by the horizon,
	// counting only periods with at least two active clients.
	TimeAvgD float64
	// MaxD is the largest D observed at any instant.
	MaxD float64
	// FinalD is D at the horizon.
	FinalD float64
	// Joins and Leaves are the processed event counts.
	Joins, Leaves int
	// RepairMoves counts reassignments of already-active clients — the
	// disruption cost of the strategy.
	RepairMoves int
	// Timeline holds (event time, D after the event) pairs.
	Timeline []TimelinePoint
}

// TimelinePoint is one sample of the D trajectory.
type TimelinePoint struct {
	Time float64
	D    float64
}

// anyCapacityLeft reports whether at least one server still has room
// under caps (always true with nil caps: capacity is unlimited).
func anyCapacityLeft(ev *core.Evaluator, caps core.Capacities) bool {
	if caps == nil {
		return true
	}
	for k := range caps {
		if ev.Load(k) < caps[k] {
			return true
		}
	}
	return false
}

// Simulate replays a churn trace against a strategy. The instance's
// client set is the churn pool; capacities are optional.
func Simulate(in *core.Instance, caps core.Capacities, events []Event, horizon float64, strat Strategy) (*Result, error) {
	if in == nil || strat == nil {
		return nil, errors.New("dynamic: nil instance or strategy")
	}
	if horizon <= 0 {
		return nil, errors.New("dynamic: horizon must be positive")
	}
	if caps != nil && len(caps) != in.NumServers() {
		return nil, fmt.Errorf("dynamic: %d capacities for %d servers", len(caps), in.NumServers())
	}
	ev, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
	if err != nil {
		return nil, err
	}
	res := &Result{Strategy: strat.Name()}
	prevT, prevD := 0.0, 0.0
	var integral float64
	record := func(t, d float64) {
		integral += prevD * (t - prevT)
		prevT, prevD = t, d
		if d > res.MaxD {
			res.MaxD = d
		}
		res.Timeline = append(res.Timeline, TimelinePoint{Time: t, D: d})
	}

	for i, e := range events {
		if i > 0 && e.Time < events[i-1].Time {
			return nil, fmt.Errorf("dynamic: events not sorted at index %d", i)
		}
		if e.Time > horizon {
			break
		}
		if e.Client < 0 || e.Client >= in.NumClients() {
			return nil, fmt.Errorf("dynamic: event client %d out of range", e.Client)
		}
		switch e.Kind {
		case Join:
			if ev.ServerOf(e.Client) != core.Unassigned {
				return nil, fmt.Errorf("dynamic: client %d joined twice", e.Client)
			}
			s := strat.PlaceJoin(ev, caps, e.Client)
			if s < 0 {
				if !anyCapacityLeft(ev, caps) {
					return nil, fmt.Errorf("dynamic: %s: join of client %d at t=%.1f: %w",
						strat.Name(), e.Client, e.Time, ErrCapacityExhausted)
				}
				return nil, fmt.Errorf("dynamic: %s returned server %d for join", strat.Name(), s)
			}
			if s >= in.NumServers() {
				return nil, fmt.Errorf("dynamic: %s returned server %d for join", strat.Name(), s)
			}
			if caps != nil && ev.Load(s) >= caps[s] {
				return nil, fmt.Errorf("dynamic: %s placed a join on saturated server %d", strat.Name(), s)
			}
			ev.Move(e.Client, s)
			res.Joins++
		case Leave:
			if ev.ServerOf(e.Client) == core.Unassigned {
				return nil, fmt.Errorf("dynamic: client %d left while inactive", e.Client)
			}
			ev.Move(e.Client, core.Unassigned)
			res.Leaves++
		default:
			return nil, fmt.Errorf("dynamic: unknown event kind %d", e.Kind)
		}
		res.RepairMoves += strat.Repair(ev, caps, e.Time)
		record(e.Time, ev.D())
	}
	// Close the integral at the horizon.
	integral += prevD * (horizon - prevT)
	res.TimeAvgD = integral / horizon
	res.FinalD = ev.D()
	return res, nil
}
