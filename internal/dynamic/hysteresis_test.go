package dynamic

import (
	"math"
	"strings"
	"testing"
)

func TestMigrationBudgetRefill(t *testing.T) {
	b := NewMigrationBudget(10, 3) // 10 moves/s, burst 3, starts full
	if !b.TryTake(0, 3) {
		t.Fatal("full bucket refused its burst")
	}
	if b.TryTake(0, 1) {
		t.Fatal("empty bucket granted a token")
	}
	// 10/s over 100 virtual ms refills one token.
	if !b.TryTake(100, 1) {
		t.Fatal("bucket did not refill at Rate")
	}
	if b.TryTake(100, 1) {
		t.Fatal("bucket over-refilled")
	}
	// Refill caps at Burst.
	if got := b.Tokens(100000); math.Abs(got-3) > 1e-9 {
		t.Fatalf("tokens = %v, want clamped at burst 3", got)
	}
}

func TestMigrationBudgetAllOrNothing(t *testing.T) {
	b := NewMigrationBudget(0, 2)
	if b.TryTake(0, 3) {
		t.Fatal("granted 3 moves with 2 tokens")
	}
	if got := b.Tokens(0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("failed TryTake consumed tokens: %v", got)
	}
	if !b.TryTake(0, 2) {
		t.Fatal("refused an affordable batch")
	}
}

// TestHysteresisGatesSmallGains: with a threshold above any gain the
// inner repair can produce, the wrapper must apply nothing and count
// the suppressions; with a zero threshold it must match the inner
// strategy exactly.
func TestHysteresisGatesSmallGains(t *testing.T) {
	in := testInstance(t, 1, 60, 5)
	events, err := GenerateChurn(defaultChurn(in.NumClients()), 2)
	if err != nil {
		t.Fatal(err)
	}

	inner := NewGreedyJoinRepair(in, 2)
	base, err := Simulate(in, nil, events, 1000, inner)
	if err != nil {
		t.Fatal(err)
	}
	if base.RepairMoves == 0 {
		t.Fatal("inner strategy never repaired; test instance too easy")
	}

	// Impossible threshold: no migration survives.
	blocked := NewHysteresis(NewGreedyJoinRepair(in, 2), 1e9, 0, nil)
	resBlocked, err := Simulate(in, nil, events, 1000, blocked)
	if err != nil {
		t.Fatal(err)
	}
	if resBlocked.RepairMoves != 0 {
		t.Fatalf("RepairMoves = %d with infinite threshold, want 0", resBlocked.RepairMoves)
	}
	if p, m := blocked.Suppressed(); p == 0 || m == 0 {
		t.Fatalf("suppression counters (%d, %d) did not move", p, m)
	}

	// Zero threshold, no budget: transparent wrapper.
	open := NewHysteresis(NewGreedyJoinRepair(in, 2), 0, 0, nil)
	resOpen, err := Simulate(in, nil, events, 1000, open)
	if err != nil {
		t.Fatal(err)
	}
	if resOpen.RepairMoves != base.RepairMoves {
		t.Fatalf("open hysteresis moves = %d, inner = %d", resOpen.RepairMoves, base.RepairMoves)
	}
	if math.Abs(resOpen.TimeAvgD-base.TimeAvgD) > 1e-9 {
		t.Fatalf("open hysteresis TimeAvgD = %v, inner = %v", resOpen.TimeAvgD, base.TimeAvgD)
	}
}

// TestHysteresisBudgetCapsMigrations: a tight token bucket must bound
// total migrations roughly by burst + rate·horizon, while D stays
// finite and the run completes.
func TestHysteresisBudgetCapsMigrations(t *testing.T) {
	in := testInstance(t, 3, 80, 6)
	events, err := GenerateChurn(defaultChurn(in.NumClients()), 5)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 1000.0
	budget := NewMigrationBudget(2, 2) // ≤ 2 burst + 2/s · 1 s = 4 moves
	h := NewHysteresis(NewGreedyJoinRepair(in, 2), 0, 0, budget)
	res, err := Simulate(in, nil, events, horizon, h)
	if err != nil {
		t.Fatal(err)
	}
	maxMoves := 2 + int(2*horizon/1000)
	if res.RepairMoves > maxMoves {
		t.Fatalf("RepairMoves = %d exceeds budget bound %d", res.RepairMoves, maxMoves)
	}
}

func TestHysteresisDeterministic(t *testing.T) {
	in := testInstance(t, 7, 50, 4)
	events, err := GenerateChurn(defaultChurn(in.NumClients()), 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		h := NewHysteresis(NewGreedyJoinRepair(in, 2), 1, 0.02, NewMigrationBudget(5, 3))
		res, err := Simulate(in, nil, events, 1000, h)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.RepairMoves != b.RepairMoves || a.TimeAvgD != b.TimeAvgD || a.MaxD != b.MaxD {
		t.Fatalf("nondeterministic hysteresis: %+v vs %+v", a, b)
	}
}

func TestHysteresisName(t *testing.T) {
	h := NewHysteresis(NewGreedyJoinRepair(nil, 2), 1, 0.05, NewMigrationBudget(10, 4))
	if !strings.Contains(h.Name(), "Greedy-Join+Repair") {
		t.Fatalf("Name %q does not mention the inner strategy", h.Name())
	}
}
