package dynamic

import "testing"

// TestHysteresisOnSuppressObserver checks that the suppression observer
// fires once per gated proposal with the right reason, and that the
// counters it mirrors stay consistent with Suppressed().
func TestHysteresisOnSuppressObserver(t *testing.T) {
	in := testInstance(t, 1, 60, 5)
	events, err := GenerateChurn(defaultChurn(in.NumClients()), 2)
	if err != nil {
		t.Fatal(err)
	}

	// Impossible gain threshold: every proposal is suppressed as "gain".
	h := NewHysteresis(NewGreedyJoinRepair(in, 2), 1e9, 0, nil)
	type obs struct {
		moves  int
		gain   float64
		reason string
	}
	var seen []obs
	h.OnSuppress = func(now float64, moves int, gain float64, reason string) {
		seen = append(seen, obs{moves, gain, reason})
	}
	if _, err := Simulate(in, nil, events, 1000, h); err != nil {
		t.Fatal(err)
	}
	prop, moves := h.Suppressed()
	if prop == 0 {
		t.Fatal("nothing suppressed; test instance too easy")
	}
	if len(seen) != prop {
		t.Fatalf("observer fired %d times, Suppressed() reports %d proposals", len(seen), prop)
	}
	total := 0
	for _, o := range seen {
		if o.reason != "gain" {
			t.Fatalf("reason = %q, want \"gain\" (threshold gate)", o.reason)
		}
		if o.moves <= 0 {
			t.Fatalf("suppressed proposal reports %d moves, want > 0", o.moves)
		}
		total += o.moves
	}
	if total != moves {
		t.Fatalf("observer move sum %d != Suppressed() moves %d", total, moves)
	}

	// Zero-rate budget: proposals clear the (zero) gain gate and are
	// then gated by the budget once its initial burst is spent.
	hb := NewHysteresis(NewGreedyJoinRepair(in, 2), 0, 0, NewMigrationBudget(0, 1))
	var reasons []string
	hb.OnSuppress = func(_ float64, _ int, _ float64, reason string) {
		reasons = append(reasons, reason)
	}
	if _, err := Simulate(in, nil, events, 1000, hb); err != nil {
		t.Fatal(err)
	}
	budgetGated := 0
	for _, r := range reasons {
		if r == "budget" {
			budgetGated++
		}
	}
	if budgetGated == 0 {
		t.Fatal("zero-rate budget never gated a proposal")
	}
}
