package dynamic

import (
	"errors"
	"math"
	"testing"

	"diacap/internal/coords"
	"diacap/internal/core"
)

func scenarioStrategies(in *core.Instance) []Strategy {
	return []Strategy{
		NewNearestJoin(in),
		NewGreedyJoin(in),
		NewGreedyJoinRepair(in, 2),
		NewPeriodicReoptimize(in, 400),
		NewHysteresis(NewGreedyJoinRepair(in, 2), 1, 0.02, NewMigrationBudget(10, 5)),
	}
}

func TestBuildScenarioKinds(t *testing.T) {
	for _, kind := range ScenarioKinds() {
		sc, err := BuildScenario(kind, 42)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(sc.Events) == 0 {
			t.Fatalf("%s: empty event tape", kind)
		}
		res, err := SimulateScenario(sc, nil, NewGreedyJoinRepair(sc.Pop.Instance, 2))
		if err != nil {
			t.Fatalf("%s: simulate: %v", kind, err)
		}
		if res.Joins == 0 || res.TimeAvgD <= 0 {
			t.Fatalf("%s: degenerate result %+v", kind, res.Result)
		}
		switch kind {
		case "drift", "mixed":
			if res.DriftSteps == 0 {
				t.Fatalf("%s: no drift steps applied", kind)
			}
		}
		switch kind {
		case "storm", "mixed":
			if res.KillsApplied == 0 {
				t.Fatalf("%s: no kills applied", kind)
			}
			if res.ForcedMoves == 0 {
				t.Fatalf("%s: kills evacuated nobody", kind)
			}
			if len(sc.Partitions) == 0 {
				t.Fatalf("%s: storm recorded no partition window", kind)
			}
		}
	}
}

// TestScenarioDeterministic: the full pipeline — population, drivers,
// simulation — must replay bit-identically for a fixed seed.
func TestScenarioDeterministic(t *testing.T) {
	for _, kind := range ScenarioKinds() {
		run := func() *ScenarioResult {
			sc, err := BuildScenario(kind, 7)
			if err != nil {
				t.Fatal(err)
			}
			strat := NewHysteresis(NewGreedyJoinRepair(sc.Pop.Instance, 2), 1, 0.02, NewMigrationBudget(8, 4))
			res, err := SimulateScenario(sc, nil, strat)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.TimeAvgD != b.TimeAvgD || a.MaxD != b.MaxD || a.RepairMoves != b.RepairMoves ||
			a.ForcedMoves != b.ForcedMoves || a.Joins != b.Joins || a.Leaves != b.Leaves ||
			a.SuppressedProposals != b.SuppressedProposals {
			t.Fatalf("%s: nondeterministic scenario: %+v vs %+v", kind, a, b)
		}
		if len(a.Timeline) != len(b.Timeline) {
			t.Fatalf("%s: timeline lengths differ", kind)
		}
		for i := range a.Timeline {
			if a.Timeline[i] != b.Timeline[i] {
				t.Fatalf("%s: timelines diverge at %d", kind, i)
			}
		}
	}
}

func TestScenarioAllStrategiesUnderCaps(t *testing.T) {
	sc, err := BuildScenario("flashcrowd", 3)
	if err != nil {
		t.Fatal(err)
	}
	in := sc.Pop.Instance
	// Generous but real capacities: the invariant check runs every event.
	caps := core.UniformCapacities(in.NumServers(), in.NumClients())
	for _, strat := range scenarioStrategies(in) {
		res, err := SimulateScenario(sc, caps, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if res.Joins == 0 {
			t.Fatalf("%s: no joins processed", strat.Name())
		}
	}
}

// TestScenarioInfeasibleBurstTypedError: when a failure storm shrinks
// effective capacity below the active population, every strategy must
// fail with ErrCapacityExhausted — not a panic, not a capacity-violating
// assignment.
func TestScenarioInfeasibleBurstTypedError(t *testing.T) {
	build := func() *Scenario {
		pop, err := NewPopulation(100, 5, 13)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario("infeasible-storm", pop, 1500)
		if err != nil {
			t.Fatal(err)
		}
		// Nearly everyone online, then 4 of 5 servers die permanently.
		if err := sc.AddBackgroundChurn(BackgroundChurnConfig{
			MeanInterarrival: 4, MeanSession: 5000, InitialActiveFraction: 0.9,
		}, 17); err != nil {
			t.Fatal(err)
		}
		if err := sc.AddFailureStorm(StormConfig{
			ServerFraction: 0.8, Start: 700, Stagger: 50,
		}, 19); err != nil {
			t.Fatal(err)
		}
		if err := sc.Finalize(); err != nil {
			t.Fatal(err)
		}
		return sc
	}
	sc := build()
	in := sc.Pop.Instance
	// Tight but instance-valid capacities: one survivor cannot absorb
	// the whole active population.
	perServer := in.NumClients()/in.NumServers() + 1
	caps := core.UniformCapacities(in.NumServers(), perServer)
	if err := in.ValidateCapacities(caps); err != nil {
		t.Fatalf("test capacities invalid: %v", err)
	}
	for _, strat := range scenarioStrategies(in) {
		res, err := SimulateScenario(sc, caps, strat)
		if err == nil {
			t.Fatalf("%s: infeasible storm succeeded: %+v", strat.Name(), res.Result)
		}
		if !errors.Is(err, ErrCapacityExhausted) {
			t.Fatalf("%s: error %v is not ErrCapacityExhausted", strat.Name(), err)
		}
	}
}

// TestSimulateInfeasibleBurstTypedError covers the plain simulator: a
// join burst beyond total capacity fails typed for every strategy.
func TestSimulateInfeasibleBurstTypedError(t *testing.T) {
	in := testInstance(t, 23, 40, 4)
	caps := core.UniformCapacities(4, 3) // 12 slots for up to 36 clients
	events, err := GenerateChurn(ChurnConfig{
		NumClients: in.NumClients(), Horizon: 1000,
		MeanInterarrival: 2, MeanSession: 10000, InitialActive: in.NumClients() / 2,
	}, 29)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range scenarioStrategies(in) {
		res, err := Simulate(in, caps, events, 1000, strat)
		if err == nil {
			t.Fatalf("%s: infeasible burst succeeded: %+v", strat.Name(), res)
		}
		if !errors.Is(err, ErrCapacityExhausted) {
			t.Fatalf("%s: error %v is not ErrCapacityExhausted", strat.Name(), err)
		}
	}
}

func TestScenarioStormRestartRestoresCapacity(t *testing.T) {
	sc, err := BuildScenario("storm", 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateScenario(sc, nil, NewGreedyJoinRepair(sc.Pop.Instance, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.KillsApplied == 0 || res.Restarts == 0 {
		t.Fatalf("storm preset applied %d kills, %d restarts; want both > 0", res.KillsApplied, res.Restarts)
	}
	if res.Restarts > res.KillsApplied {
		t.Fatalf("%d restarts exceed %d kills", res.Restarts, res.KillsApplied)
	}
}

// TestScenarioDriftChangesGeometry: drift must actually alter the D
// trajectory relative to the same churn without drift.
func TestScenarioDriftChangesGeometry(t *testing.T) {
	run := func(withDrift bool) float64 {
		pop, err := NewPopulation(80, 6, 31)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := NewScenario("drift-ab", pop, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if withDrift {
			if err := sc.AddDrift(DriftConfig{
				Interval: 100,
				Mobility: coords.MobilityConfig{Velocity: 4, WalkSigma: 1, MovingFraction: 0.7},
			}, 37); err != nil {
				t.Fatal(err)
			}
		}
		if err := sc.AddBackgroundChurn(BackgroundChurnConfig{
			MeanInterarrival: 6, MeanSession: 400, InitialActiveFraction: 0.5,
		}, 41); err != nil {
			t.Fatal(err)
		}
		if err := sc.Finalize(); err != nil {
			t.Fatal(err)
		}
		res, err := SimulateScenario(sc, nil, NewGreedyJoin(pop.Instance))
		if err != nil {
			t.Fatal(err)
		}
		if withDrift && res.DriftSteps != 9 {
			t.Fatalf("DriftSteps = %d, want 9 (horizon 1000 / interval 100, exclusive)", res.DriftSteps)
		}
		return res.TimeAvgD
	}
	static, drifted := run(false), run(true)
	if math.Abs(static-drifted) < 1e-9 {
		t.Fatalf("drift left TimeAvgD unchanged at %v", static)
	}
}

func TestScenarioFinalizeCatchesDoubleJoin(t *testing.T) {
	pop, err := NewPopulation(20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario("bad", pop, 100)
	if err != nil {
		t.Fatal(err)
	}
	sc.Events = []Event{
		{Time: 1, Kind: Join, Client: 0},
		{Time: 2, Kind: Join, Client: 0},
	}
	if err := sc.Finalize(); err == nil {
		t.Fatal("Finalize accepted a double join")
	}
}

func TestSimulateScenarioRequiresFinalize(t *testing.T) {
	pop, err := NewPopulation(20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario("raw", pop, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateScenario(sc, nil, NewGreedyJoin(pop.Instance)); err == nil {
		t.Fatal("simulated a non-finalized scenario")
	}
}

func TestScenarioDriversClaimDisjointPools(t *testing.T) {
	pop, err := NewPopulation(60, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScenario("claims", pop, 500)
	if err != nil {
		t.Fatal(err)
	}
	total := sc.Unclaimed()
	if err := sc.AddFlashCrowd(FlashCrowdConfig{ClientFraction: 0.5, Start: 100, Window: 50}, 1); err != nil {
		t.Fatal(err)
	}
	afterCrowd := sc.Unclaimed()
	if afterCrowd >= total {
		t.Fatalf("flash crowd claimed nothing (%d -> %d)", total, afterCrowd)
	}
	if err := sc.AddBackgroundChurn(BackgroundChurnConfig{
		MeanInterarrival: 5, MeanSession: 100, InitialActiveFraction: 0.5,
	}, 2); err != nil {
		t.Fatal(err)
	}
	if sc.Unclaimed() != 0 {
		t.Fatalf("default background churn left %d clients unclaimed", sc.Unclaimed())
	}
	// Finalize must pass: disjoint pools cannot double-join.
	if err := sc.Finalize(); err != nil {
		t.Fatal(err)
	}
	// A third driver on the empty pool must fail loudly.
	if err := sc.AddBackgroundChurn(BackgroundChurnConfig{MeanInterarrival: 5, MeanSession: 100}, 3); err == nil {
		t.Fatal("driver claimed clients from an exhausted pool")
	}
}
