package dynamic

// Scenario drivers: composable, seeded, replayable workload scripts for
// stress-testing online assignment. A Scenario owns a coordinate-based
// population and accumulates event tapes from independent drivers —
// background Poisson churn, flash crowds aimed at one region, diurnal
// (sinusoidal-rate) join waves, correlated server-failure storms, and
// coordinate drift that physically moves clients through the latency
// space. Each driver consumes its own seeded rng and claims a disjoint
// slice of the client pool, so drivers compose without conflicting and
// the whole scenario replays bit-identically for a given seed set.
//
// Scenarios are deliberately neutral about the execution substrate:
// SimulateScenario replays them against the pure simulator in this
// package, and cmd/diasim converts the kill/partition schedules into a
// live.FaultPlan to run the same script against real TCP servers.

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"diacap/internal/coords"
	"diacap/internal/core"
	"diacap/internal/latency"
)

// ServerKill schedules the failure of one server (instance-local
// index). RestartAt <= Time means the server never comes back.
type ServerKill struct {
	Time      float64
	Server    int
	RestartAt float64
}

// PartitionWindow isolates a set of servers (instance-local indices)
// from the rest of the topology for [Start, End). The pure simulator
// ignores partitions — an assignment is software state, not a packet —
// but live mode converts each window into FaultPlan partitions that cut
// the real TCP links.
type PartitionWindow struct {
	Start, End float64
	Servers    []int
}

// DriftSnapshot is the instance re-materialized from drifted
// coordinates, taking effect at Time.
type DriftSnapshot struct {
	Time     float64
	Instance *core.Instance
}

// Population is a coordinate-embedded node set split into servers and
// clients, with the matching assignment instance.
type Population struct {
	// Coords holds every node's network coordinate.
	Coords []latency.Coord
	// Servers and Clients are node indices; Clients[i] is the node of
	// instance-local client i.
	Servers, Clients []int
	// Instance is the assignment instance over CoordsToMatrix(Coords).
	Instance *core.Instance
}

// NewPopulation scatters numNodes synthetic coordinates and promotes a
// random numServers of them to servers.
func NewPopulation(numNodes, numServers int, seed int64) (*Population, error) {
	if numServers <= 0 || numServers >= numNodes {
		return nil, fmt.Errorf("dynamic: need 0 < servers (%d) < nodes (%d)", numServers, numNodes)
	}
	cs, err := latency.GenerateCoords(latency.DefaultConfig(numNodes), seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(numNodes)
	servers := append([]int(nil), perm[:numServers]...)
	clients := append([]int(nil), perm[numServers:]...)
	sort.Ints(servers)
	sort.Ints(clients)
	in, err := core.NewInstanceTrusted(latency.CoordsToMatrix(cs), servers, clients)
	if err != nil {
		return nil, err
	}
	return &Population{Coords: cs, Servers: servers, Clients: clients, Instance: in}, nil
}

// Scenario is a replayable workload script over one population.
type Scenario struct {
	Name    string
	Pop     *Population
	Horizon float64
	// Events is the merged churn tape (sorted by Finalize).
	Events []Event
	// Kills is the correlated-failure schedule.
	Kills []ServerKill
	// Partitions are live-mode partition windows.
	Partitions []PartitionWindow
	// Snapshots is the coordinate-drift schedule (at most one AddDrift).
	Snapshots []DriftSnapshot

	// unclaimed is the pool of instance-local client indices no driver
	// has taken yet, ascending.
	unclaimed []int
	finalized bool
}

// NewScenario starts an empty scenario over pop.
func NewScenario(name string, pop *Population, horizon float64) (*Scenario, error) {
	if pop == nil || pop.Instance == nil {
		return nil, errors.New("dynamic: nil population")
	}
	if horizon <= 0 {
		return nil, errors.New("dynamic: horizon must be positive")
	}
	sc := &Scenario{Name: name, Pop: pop, Horizon: horizon}
	sc.unclaimed = make([]int, pop.Instance.NumClients())
	for i := range sc.unclaimed {
		sc.unclaimed[i] = i
	}
	return sc, nil
}

// Unclaimed reports how many clients remain available to drivers.
func (sc *Scenario) Unclaimed() int { return len(sc.unclaimed) }

// share converts a fraction of the remaining pool into a count,
// guaranteeing at least one client while any remain.
func (sc *Scenario) share(fraction float64) (int, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("dynamic: client fraction %v outside (0, 1]", fraction)
	}
	if len(sc.unclaimed) == 0 {
		return 0, errors.New("dynamic: client pool exhausted (drivers claimed everyone)")
	}
	n := int(math.Round(fraction * float64(len(sc.unclaimed))))
	if n < 1 {
		n = 1
	}
	if n > len(sc.unclaimed) {
		n = len(sc.unclaimed)
	}
	return n, nil
}

// takeAny claims the n lowest-indexed unclaimed clients.
func (sc *Scenario) takeAny(n int) []int {
	taken := append([]int(nil), sc.unclaimed[:n]...)
	sc.unclaimed = sc.unclaimed[n:]
	return taken
}

// takeNearest claims the n unclaimed clients nearest the target
// coordinate (ties broken by index, so the claim is deterministic).
func (sc *Scenario) takeNearest(target latency.Coord, n int) []int {
	type cand struct {
		client int
		dist   float64
	}
	cands := make([]cand, len(sc.unclaimed))
	for i, c := range sc.unclaimed {
		node := sc.Pop.Clients[c]
		cands[i] = cand{client: c, dist: sc.Pop.Coords[node].LatencyTo(target)}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if c := cmp.Compare(cands[i].dist, cands[j].dist); c != 0 {
			return c < 0
		}
		return cands[i].client < cands[j].client
	})
	taken := make([]int, n)
	for i := range taken {
		taken[i] = cands[i].client
	}
	sort.Ints(taken)
	rest := make([]int, 0, len(cands)-n)
	for _, c := range cands[n:] {
		rest = append(rest, c.client)
	}
	sort.Ints(rest)
	sc.unclaimed = rest
	return taken
}

// BackgroundChurnConfig parameterizes steady Poisson churn.
type BackgroundChurnConfig struct {
	// ClientFraction of the remaining pool to claim (default 1 = rest).
	ClientFraction float64
	// MeanInterarrival between joins (ms).
	MeanInterarrival float64
	// MeanSession length (ms, exponential).
	MeanSession float64
	// InitialActiveFraction of the claimed clients joined at t=0.
	InitialActiveFraction float64
}

// AddBackgroundChurn claims part of the pool and runs the standard
// Poisson churn generator over it.
func (sc *Scenario) AddBackgroundChurn(cfg BackgroundChurnConfig, seed int64) error {
	if cfg.ClientFraction == 0 {
		cfg.ClientFraction = 1
	}
	n, err := sc.share(cfg.ClientFraction)
	if err != nil {
		return err
	}
	if cfg.InitialActiveFraction < 0 || cfg.InitialActiveFraction > 1 {
		return fmt.Errorf("dynamic: InitialActiveFraction %v outside [0, 1]", cfg.InitialActiveFraction)
	}
	pool := sc.takeAny(n)
	events, err := GenerateChurnPool(pool, ChurnConfig{
		NumClients:       len(pool),
		Horizon:          sc.Horizon,
		MeanInterarrival: cfg.MeanInterarrival,
		MeanSession:      cfg.MeanSession,
		InitialActive:    int(math.Round(cfg.InitialActiveFraction * float64(len(pool)))),
	}, seed)
	if err != nil {
		return err
	}
	sc.Events = append(sc.Events, events...)
	return nil
}

// FlashCrowdConfig parameterizes a burst of geographically clustered
// joins: the claimed clients are the ones nearest a random epicenter,
// and they all arrive within one short window — the "everyone in one
// region piles in at once" failure mode.
type FlashCrowdConfig struct {
	// ClientFraction of the remaining pool forming the crowd.
	ClientFraction float64
	// Start of the burst window (ms).
	Start float64
	// Window over which crowd joins arrive uniformly (ms).
	Window float64
	// MeanSession of crowd members (ms, exponential); 0 = stay to the
	// horizon.
	MeanSession float64
}

// AddFlashCrowd claims the clients nearest a seeded-random epicenter
// and scripts their burst arrival.
func (sc *Scenario) AddFlashCrowd(cfg FlashCrowdConfig, seed int64) error {
	if cfg.ClientFraction == 0 {
		cfg.ClientFraction = 0.25
	}
	n, err := sc.share(cfg.ClientFraction)
	if err != nil {
		return err
	}
	if cfg.Start < 0 || cfg.Start >= sc.Horizon {
		return fmt.Errorf("dynamic: flash crowd start %v outside [0, %v)", cfg.Start, sc.Horizon)
	}
	if cfg.Window <= 0 {
		return errors.New("dynamic: flash crowd window must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	epicenterClient := sc.unclaimed[rng.Intn(len(sc.unclaimed))]
	epicenter := sc.Pop.Coords[sc.Pop.Clients[epicenterClient]]
	crowd := sc.takeNearest(epicenter, n)

	for _, c := range crowd {
		at := cfg.Start + rng.Float64()*cfg.Window
		if at >= sc.Horizon {
			continue
		}
		sc.Events = append(sc.Events, Event{Time: at, Kind: Join, Client: c})
		if cfg.MeanSession > 0 {
			if end := at + rng.ExpFloat64()*cfg.MeanSession; end < sc.Horizon {
				sc.Events = append(sc.Events, Event{Time: end, Kind: Leave, Client: c})
			}
		}
	}
	return nil
}

// DiurnalConfig parameterizes a non-homogeneous Poisson join process
// with sinusoidal rate λ(t) = (1 + A·sin(2πt/Period)) / MeanInterarrival
// — the day/night load cycle of a planetary application.
type DiurnalConfig struct {
	// ClientFraction of the remaining pool to claim (default 1 = rest).
	ClientFraction float64
	// MeanInterarrival between joins at the baseline rate (ms).
	MeanInterarrival float64
	// Amplitude A in [0, 1): peak rate is (1+A)×, trough (1−A)×.
	Amplitude float64
	// Period of the cycle (ms).
	Period float64
	// MeanSession length (ms, exponential).
	MeanSession float64
	// InitialActiveFraction of the claimed clients joined at t=0.
	InitialActiveFraction float64
}

// AddDiurnalChurn claims part of the pool and scripts sinusoidal-rate
// churn over it via thinning (Lewis & Shedler): candidate arrivals at
// the peak rate λmax are accepted with probability λ(t)/λmax, which
// realizes the exact non-homogeneous process.
func (sc *Scenario) AddDiurnalChurn(cfg DiurnalConfig, seed int64) error {
	if cfg.ClientFraction == 0 {
		cfg.ClientFraction = 1
	}
	n, err := sc.share(cfg.ClientFraction)
	if err != nil {
		return err
	}
	switch {
	case cfg.MeanInterarrival <= 0 || cfg.MeanSession <= 0:
		return errors.New("dynamic: diurnal mean interarrival and session must be positive")
	case cfg.Amplitude < 0 || cfg.Amplitude >= 1:
		return fmt.Errorf("dynamic: diurnal amplitude %v outside [0, 1)", cfg.Amplitude)
	case cfg.Period <= 0:
		return errors.New("dynamic: diurnal period must be positive")
	case cfg.InitialActiveFraction < 0 || cfg.InitialActiveFraction > 1:
		return fmt.Errorf("dynamic: InitialActiveFraction %v outside [0, 1]", cfg.InitialActiveFraction)
	}
	pool := sc.takeAny(n)
	rng := rand.New(rand.NewSource(seed))

	var events, departures []Event
	idle := append([]int(nil), pool...)
	pickIdle := func() int {
		if len(idle) == 0 {
			return -1
		}
		i := rng.Intn(len(idle))
		c := idle[i]
		idle[i] = idle[len(idle)-1]
		idle = idle[:len(idle)-1]
		return c
	}
	join := func(c int, at float64) {
		events = append(events, Event{Time: at, Kind: Join, Client: c})
		if end := at + rng.ExpFloat64()*cfg.MeanSession; end < sc.Horizon {
			departures = append(departures, Event{Time: end, Kind: Leave, Client: c})
		}
	}
	for i := 0; i < int(math.Round(cfg.InitialActiveFraction*float64(len(pool)))); i++ {
		if c := pickIdle(); c >= 0 {
			join(c, 0)
		}
	}
	lambdaMax := (1 + cfg.Amplitude) / cfg.MeanInterarrival
	for t := rng.ExpFloat64() / lambdaMax; t < sc.Horizon; t += rng.ExpFloat64() / lambdaMax {
		lambda := (1 + cfg.Amplitude*math.Sin(2*math.Pi*t/cfg.Period)) / cfg.MeanInterarrival
		if rng.Float64()*lambdaMax > lambda {
			continue // thinned: this candidate is off-cycle
		}
		sort.Slice(departures, func(i, j int) bool { return departures[i].Time < departures[j].Time })
		for len(departures) > 0 && departures[0].Time <= t {
			events = append(events, departures[0])
			idle = append(idle, departures[0].Client)
			departures = departures[1:]
		}
		if c := pickIdle(); c >= 0 {
			join(c, t)
		}
	}
	events = append(events, departures...)
	sc.Events = append(sc.Events, events...)
	return nil
}

// DriftConfig parameterizes coordinate drift: every Interval ms the
// mobility model steps and the instance is re-materialized from the
// moved coordinates.
type DriftConfig struct {
	// Interval between drift snapshots (ms).
	Interval float64
	// Mobility model applied to client nodes (servers never move).
	Mobility coords.MobilityConfig
}

// AddDrift precomputes the instance snapshot at every drift step.
// Drift claims no clients — it composes with any churn driver — but a
// scenario carries at most one drift plan.
func (sc *Scenario) AddDrift(cfg DriftConfig, seed int64) error {
	if len(sc.Snapshots) > 0 {
		return errors.New("dynamic: scenario already has a drift plan")
	}
	if cfg.Interval <= 0 || cfg.Interval >= sc.Horizon {
		return fmt.Errorf("dynamic: drift interval %v outside (0, %v)", cfg.Interval, sc.Horizon)
	}
	sys, err := coords.NewFromCoords(coords.DefaultConfig(), sc.Pop.Coords, seed)
	if err != nil {
		return err
	}
	mob, err := coords.NewMobility(sys, sc.Pop.Clients, cfg.Mobility, seed)
	if err != nil {
		return err
	}
	for t := cfg.Interval; t < sc.Horizon; t += cfg.Interval {
		if err := mob.Step(); err != nil {
			return err
		}
		cs, err := sys.Coords()
		if err != nil {
			return err
		}
		in, err := core.NewInstanceTrusted(latency.CoordsToMatrix(cs), sc.Pop.Servers, sc.Pop.Clients)
		if err != nil {
			return err
		}
		sc.Snapshots = append(sc.Snapshots, DriftSnapshot{Time: t, Instance: in})
	}
	return nil
}

// StormConfig parameterizes a correlated failure storm: the servers
// nearest a random epicenter — the "one availability zone" — fail
// within a short window.
type StormConfig struct {
	// ServerFraction of all servers killed (at least one).
	ServerFraction float64
	// Start of the storm (ms).
	Start float64
	// Stagger spreads the kills over [Start, Start+Stagger].
	Stagger float64
	// Outage is how long each server stays down (ms); 0 = permanent.
	Outage float64
	// Partition additionally records a PartitionWindow isolating the
	// killed set for the storm's duration (live mode only).
	Partition bool
}

// AddFailureStorm schedules correlated kills of the servers nearest a
// seeded-random epicenter.
func (sc *Scenario) AddFailureStorm(cfg StormConfig, seed int64) error {
	ns := sc.Pop.Instance.NumServers()
	if cfg.ServerFraction <= 0 || cfg.ServerFraction > 1 {
		return fmt.Errorf("dynamic: storm server fraction %v outside (0, 1]", cfg.ServerFraction)
	}
	if cfg.Start < 0 || cfg.Start >= sc.Horizon {
		return fmt.Errorf("dynamic: storm start %v outside [0, %v)", cfg.Start, sc.Horizon)
	}
	if cfg.Stagger < 0 {
		return errors.New("dynamic: storm stagger must be non-negative")
	}
	n := int(math.Round(cfg.ServerFraction * float64(ns)))
	if n < 1 {
		n = 1
	}
	if n >= ns {
		n = ns - 1 // leave at least one survivor: a total blackout has no assignment
	}
	rng := rand.New(rand.NewSource(seed))
	epicenter := sc.Pop.Coords[sc.Pop.Servers[rng.Intn(ns)]]
	type cand struct {
		server int
		dist   float64
	}
	cands := make([]cand, ns)
	for k := 0; k < ns; k++ {
		cands[k] = cand{server: k, dist: sc.Pop.Coords[sc.Pop.Servers[k]].LatencyTo(epicenter)}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if c := cmp.Compare(cands[i].dist, cands[j].dist); c != 0 {
			return c < 0
		}
		return cands[i].server < cands[j].server
	})

	var victims []int
	for i := 0; i < n; i++ {
		at := cfg.Start
		if cfg.Stagger > 0 {
			at += rng.Float64() * cfg.Stagger
		}
		restart := 0.0
		if cfg.Outage > 0 {
			restart = at + cfg.Outage
		}
		sc.Kills = append(sc.Kills, ServerKill{Time: at, Server: cands[i].server, RestartAt: restart})
		victims = append(victims, cands[i].server)
	}
	if cfg.Partition {
		end := cfg.Start + cfg.Stagger + cfg.Outage
		if cfg.Outage == 0 || end > sc.Horizon {
			end = sc.Horizon
		}
		sort.Ints(victims)
		sc.Partitions = append(sc.Partitions, PartitionWindow{Start: cfg.Start, End: end, Servers: victims})
	}
	return nil
}

// Finalize sorts the merged tapes and verifies the script is coherent:
// events in order (leaves before joins at ties), no double joins or
// orphan leaves, kills reference real servers. Must be called once,
// after all drivers, before SimulateScenario.
func (sc *Scenario) Finalize() error {
	if sc.finalized {
		return errors.New("dynamic: scenario already finalized")
	}
	sortEvents(sc.Events)
	active := make(map[int]bool)
	for i, e := range sc.Events {
		switch e.Kind {
		case Join:
			if active[e.Client] {
				return fmt.Errorf("dynamic: scenario %s: client %d double-joins at event %d", sc.Name, e.Client, i)
			}
			active[e.Client] = true
		case Leave:
			if !active[e.Client] {
				return fmt.Errorf("dynamic: scenario %s: client %d leaves while inactive at event %d", sc.Name, e.Client, i)
			}
			active[e.Client] = false
		default:
			return fmt.Errorf("dynamic: scenario %s: unknown event kind %d", sc.Name, e.Kind)
		}
	}
	ns := sc.Pop.Instance.NumServers()
	for _, k := range sc.Kills {
		if k.Server < 0 || k.Server >= ns {
			return fmt.Errorf("dynamic: scenario %s: kill of unknown server %d", sc.Name, k.Server)
		}
	}
	sort.SliceStable(sc.Kills, func(i, j int) bool { return sc.Kills[i].Time < sc.Kills[j].Time })
	sc.finalized = true
	return nil
}

// sortEvents time-orders a churn tape, leaves before joins at ties.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if c := cmp.Compare(events[i].Time, events[j].Time); c != 0 {
			return c < 0
		}
		return events[i].Kind == Leave && events[j].Kind == Join
	})
}

// ScenarioKinds lists the preset scenario names BuildScenario accepts.
func ScenarioKinds() []string {
	return []string{"flashcrowd", "diurnal", "drift", "storm", "mixed"}
}

// BuildScenario assembles a preset scenario: a ready-made population
// and driver mix sized for CI-scale runs, fully determined by the seed.
func BuildScenario(kind string, seed int64) (*Scenario, error) {
	pop, err := NewPopulation(140, 8, seed)
	if err != nil {
		return nil, err
	}
	sc, err := NewScenario(kind, pop, 2000)
	if err != nil {
		return nil, err
	}
	background := BackgroundChurnConfig{
		MeanInterarrival:      8,
		MeanSession:           400,
		InitialActiveFraction: 0.5,
	}
	switch kind {
	case "flashcrowd":
		err = sc.AddFlashCrowd(FlashCrowdConfig{
			ClientFraction: 0.4, Start: 800, Window: 60, MeanSession: 600,
		}, seed+1)
		if err == nil {
			err = sc.AddBackgroundChurn(background, seed+2)
		}
	case "diurnal":
		err = sc.AddDiurnalChurn(DiurnalConfig{
			MeanInterarrival: 6, Amplitude: 0.8, Period: 1000,
			MeanSession: 300, InitialActiveFraction: 0.3,
		}, seed+1)
	case "drift":
		err = sc.AddDrift(DriftConfig{
			Interval: 100,
			Mobility: coords.MobilityConfig{Velocity: 3, WalkSigma: 0.5, MovingFraction: 0.6},
		}, seed+1)
		if err == nil {
			err = sc.AddBackgroundChurn(background, seed+2)
		}
	case "storm":
		err = sc.AddFailureStorm(StormConfig{
			ServerFraction: 0.25, Start: 700, Stagger: 100, Outage: 600, Partition: true,
		}, seed+1)
		if err == nil {
			err = sc.AddBackgroundChurn(BackgroundChurnConfig{
				MeanInterarrival: 6, MeanSession: 600, InitialActiveFraction: 0.6,
			}, seed+2)
		}
	case "mixed":
		err = sc.AddFlashCrowd(FlashCrowdConfig{
			ClientFraction: 0.3, Start: 600, Window: 80, MeanSession: 700,
		}, seed+1)
		if err == nil {
			err = sc.AddDrift(DriftConfig{
				Interval: 125,
				Mobility: coords.MobilityConfig{Velocity: 2, WalkSigma: 0.5, MovingFraction: 0.5},
			}, seed+2)
		}
		if err == nil {
			err = sc.AddFailureStorm(StormConfig{
				ServerFraction: 0.25, Start: 1200, Stagger: 80, Outage: 400, Partition: true,
			}, seed+3)
		}
		if err == nil {
			err = sc.AddBackgroundChurn(background, seed+4)
		}
	default:
		return nil, fmt.Errorf("dynamic: unknown scenario kind %q (want one of %v)", kind, ScenarioKinds())
	}
	if err != nil {
		return nil, err
	}
	if err := sc.Finalize(); err != nil {
		return nil, err
	}
	return sc, nil
}
