package dynamic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"diacap/internal/core"
	"diacap/internal/latency"
)

func testInstance(t testing.TB, seed int64, n, ns int) *core.Instance {
	t.Helper()
	m := latency.ScaledLike(n, seed)
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	in, err := core.NewInstanceTrusted(m, perm[:ns], perm[ns:])
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func defaultChurn(nc int) ChurnConfig {
	return ChurnConfig{
		NumClients:       nc,
		Horizon:          1000,
		MeanInterarrival: 5,
		MeanSession:      200,
		InitialActive:    nc / 4,
	}
}

func TestChurnConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ChurnConfig)
	}{
		{"zero clients", func(c *ChurnConfig) { c.NumClients = 0 }},
		{"zero horizon", func(c *ChurnConfig) { c.Horizon = 0 }},
		{"zero interarrival", func(c *ChurnConfig) { c.MeanInterarrival = 0 }},
		{"zero session", func(c *ChurnConfig) { c.MeanSession = 0 }},
		{"negative initial", func(c *ChurnConfig) { c.InitialActive = -1 }},
		{"initial too big", func(c *ChurnConfig) { c.InitialActive = 99999 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := defaultChurn(20)
			tc.mutate(&cfg)
			if _, err := GenerateChurn(cfg, 1); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestGenerateChurnWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		cfg := defaultChurn(30)
		events, err := GenerateChurn(cfg, seed)
		if err != nil {
			return false
		}
		active := map[int]bool{}
		for i, e := range events {
			if i > 0 && e.Time < events[i-1].Time {
				return false // not sorted
			}
			if e.Client < 0 || e.Client >= cfg.NumClients {
				return false
			}
			switch e.Kind {
			case Join:
				if active[e.Client] {
					return false // double join
				}
				active[e.Client] = true
			case Leave:
				if !active[e.Client] {
					return false // leave while inactive
				}
				delete(active, e.Client)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateChurnDeterministic(t *testing.T) {
	cfg := defaultChurn(25)
	a, err := GenerateChurn(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChurn(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic churn")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic churn")
		}
	}
}

func TestGenerateChurnInitialActive(t *testing.T) {
	cfg := defaultChurn(40)
	cfg.InitialActive = 10
	events, err := GenerateChurn(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	zeroJoins := 0
	for _, e := range events {
		if e.Time == 0 && e.Kind == Join {
			zeroJoins++
		}
	}
	if zeroJoins != 10 {
		t.Fatalf("joins at time 0 = %d, want 10", zeroJoins)
	}
}

func TestSimulateStrategies(t *testing.T) {
	in := testInstance(t, 1, 60, 5)
	events, err := GenerateChurn(defaultChurn(in.NumClients()), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{
		NewNearestJoin(in),
		NewGreedyJoin(in),
		NewGreedyJoinRepair(in, 2),
	} {
		res, err := Simulate(in, nil, events, 1000, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
		if res.Joins == 0 || res.Leaves == 0 {
			t.Fatalf("%s: trivial trace (%d joins, %d leaves)", strat.Name(), res.Joins, res.Leaves)
		}
		if res.TimeAvgD <= 0 || res.MaxD < res.TimeAvgD {
			t.Fatalf("%s: inconsistent metrics %+v", strat.Name(), res)
		}
		if len(res.Timeline) != res.Joins+res.Leaves {
			t.Fatalf("%s: timeline length %d, want %d", strat.Name(), len(res.Timeline), res.Joins+res.Leaves)
		}
	}
}

func TestGreedyJoinBeatsNearestJoin(t *testing.T) {
	// Placing joins D-aware should beat nearest-server placement on
	// time-averaged D for most traces; require it on a fixed seed set.
	wins := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		in := testInstance(t, int64(10+trial), 50, 4)
		events, err := GenerateChurn(defaultChurn(in.NumClients()), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		nj, err := Simulate(in, nil, events, 1000, NewNearestJoin(in))
		if err != nil {
			t.Fatal(err)
		}
		gj, err := Simulate(in, nil, events, 1000, NewGreedyJoin(in))
		if err != nil {
			t.Fatal(err)
		}
		if gj.TimeAvgD <= nj.TimeAvgD+1e-9 {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("Greedy-Join beat Nearest-Join only %d/%d times", wins, trials)
	}
}

func TestRepairImprovesOverPlainGreedyJoin(t *testing.T) {
	wins := 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		in := testInstance(t, int64(20+trial), 50, 4)
		events, err := GenerateChurn(defaultChurn(in.NumClients()), int64(trial+50))
		if err != nil {
			t.Fatal(err)
		}
		gj, err := Simulate(in, nil, events, 1000, NewGreedyJoin(in))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Simulate(in, nil, events, 1000, NewGreedyJoinRepair(in, 2))
		if err != nil {
			t.Fatal(err)
		}
		if rep.TimeAvgD <= gj.TimeAvgD+1e-9 {
			wins++
		}
		if rep.RepairMoves == 0 {
			t.Fatal("repair strategy should perform moves")
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("repair beat plain join only %d/%d times", wins, trials)
	}
}

func TestSimulateCapacitated(t *testing.T) {
	in := testInstance(t, 5, 40, 4)
	caps := core.UniformCapacities(4, in.NumClients())
	cfg := defaultChurn(in.NumClients())
	events, err := GenerateChurn(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{NewNearestJoin(in), NewGreedyJoin(in), NewGreedyJoinRepair(in, 1)} {
		if _, err := Simulate(in, caps, events, cfg.Horizon, strat); err != nil {
			t.Fatalf("%s: %v", strat.Name(), err)
		}
	}
	// Tight capacities must still hold (joins spill, repair respects them).
	tight := core.UniformCapacities(4, cfg.NumClients/3)
	if _, err := Simulate(in, tight, events, cfg.Horizon, NewGreedyJoinRepair(in, 1)); err != nil {
		t.Fatalf("tight caps: %v", err)
	}
}

func TestSimulateValidation(t *testing.T) {
	in := testInstance(t, 6, 20, 2)
	strat := NewNearestJoin(in)
	if _, err := Simulate(nil, nil, nil, 10, strat); err == nil {
		t.Fatal("nil instance should fail")
	}
	if _, err := Simulate(in, nil, nil, 0, strat); err == nil {
		t.Fatal("zero horizon should fail")
	}
	if _, err := Simulate(in, core.Capacities{1}, nil, 10, strat); err == nil {
		t.Fatal("capacity length mismatch should fail")
	}
	bad := []Event{{Time: 5, Kind: Leave, Client: 0}}
	if _, err := Simulate(in, nil, bad, 10, strat); err == nil {
		t.Fatal("leave before join should fail")
	}
	unsorted := []Event{{Time: 5, Kind: Join, Client: 0}, {Time: 1, Kind: Join, Client: 1}}
	if _, err := Simulate(in, nil, unsorted, 10, strat); err == nil {
		t.Fatal("unsorted events should fail")
	}
	double := []Event{{Time: 1, Kind: Join, Client: 0}, {Time: 2, Kind: Join, Client: 0}}
	if _, err := Simulate(in, nil, double, 10, strat); err == nil {
		t.Fatal("double join should fail")
	}
	outOfRange := []Event{{Time: 1, Kind: Join, Client: 9999}}
	if _, err := Simulate(in, nil, outOfRange, 10, strat); err == nil {
		t.Fatal("out-of-range client should fail")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	in := testInstance(t, 7, 40, 4)
	events, err := GenerateChurn(defaultChurn(in.NumClients()), 11)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(in, nil, events, 1000, NewGreedyJoinRepair(in, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(in, nil, events, 1000, NewGreedyJoinRepair(in, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeAvgD != b.TimeAvgD || a.RepairMoves != b.RepairMoves {
		t.Fatal("simulation not deterministic")
	}
}

func BenchmarkSimulateGreedyJoinRepair(b *testing.B) {
	m := latency.ScaledLike(150, 1)
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(150)
	in, err := core.NewInstanceTrusted(m, perm[:8], perm[8:])
	if err != nil {
		b.Fatal(err)
	}
	cfg := defaultChurn(in.NumClients())
	events, err := GenerateChurn(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	strat := NewGreedyJoinRepair(in, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(in, nil, events, cfg.Horizon, strat); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeriodicReoptimize(t *testing.T) {
	in := testInstance(t, 31, 50, 4)
	cfg := defaultChurn(in.NumClients())
	events, err := GenerateChurn(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	strat := NewPeriodicReoptimize(in, 200)
	res, err := Simulate(in, nil, events, cfg.Horizon, strat)
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairMoves == 0 {
		t.Fatal("periodic re-optimization should move clients")
	}
	// Full re-optimization should match or beat the incremental repair
	// strategy on time-averaged D (it pays far more disruption for it).
	inc, err := Simulate(in, nil, events, cfg.Horizon, NewGreedyJoinRepair(in, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeAvgD > inc.TimeAvgD*1.15 {
		t.Fatalf("periodic (%v) clearly worse than incremental (%v)", res.TimeAvgD, inc.TimeAvgD)
	}
	if res.RepairMoves <= inc.RepairMoves {
		t.Fatalf("periodic should be more disruptive: %d vs %d moves", res.RepairMoves, inc.RepairMoves)
	}
}

func TestPeriodicReoptimizeRespectsPeriod(t *testing.T) {
	in := testInstance(t, 32, 30, 3)
	// A period longer than the horizon: only the t=0 batch can trigger at
	// most one solve (events at time 0 have now = 0 = lastRun start).
	strat := NewPeriodicReoptimize(in, 1e9)
	cfg := defaultChurn(in.NumClients())
	events, err := GenerateChurn(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(in, nil, events, cfg.Horizon, strat)
	if err != nil {
		t.Fatal(err)
	}
	// No event time reaches lastRun + 1e9, so no re-optimizations happen.
	if res.RepairMoves != 0 {
		t.Fatalf("moves = %d, want 0 with an unreachable period", res.RepairMoves)
	}
}

func TestPeriodicReoptimizeCapacitated(t *testing.T) {
	in := testInstance(t, 33, 40, 4)
	caps := core.UniformCapacities(4, in.NumClients()/2)
	cfg := defaultChurn(in.NumClients())
	events, err := GenerateChurn(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(in, caps, events, cfg.Horizon, NewPeriodicReoptimize(in, 150)); err != nil {
		t.Fatal(err)
	}
}
