package dynamic

// Hysteresis-bounded reassignment: the stability question for online
// client assignment. Migrating a client is never free — it is a live
// reconnect for a participant — so a migration should only happen when
// the predicted improvement in D clears a threshold, and the aggregate
// migration rate should be capped no matter how noisy the workload
// gets. Smith/Bullo study exactly this trade-off for dynamic target
// assignment under limited communication; here the same idea bounds the
// repair side of any online Strategy.

import (
	"fmt"
	"math"

	"diacap/internal/core"
)

// MigrationBudget is a token bucket over virtual time: migrations spend
// tokens, tokens refill at Rate per virtual second up to Burst. The
// zero value is unusable; use NewMigrationBudget. Not safe for
// concurrent use (the simulator is single-goroutine by design).
type MigrationBudget struct {
	// Rate is the sustained migration allowance in moves per virtual
	// second.
	Rate float64
	// Burst is the bucket capacity in moves.
	Burst float64

	tokens float64
	last   float64
	primed bool
}

// NewMigrationBudget builds a bucket that starts full.
func NewMigrationBudget(ratePerSec, burst float64) *MigrationBudget {
	if ratePerSec < 0 {
		ratePerSec = 0
	}
	if burst < 1 {
		burst = 1
	}
	return &MigrationBudget{Rate: ratePerSec, Burst: burst, tokens: burst}
}

// refill advances the bucket to virtual time now (ms).
func (b *MigrationBudget) refill(now float64) {
	if !b.primed {
		b.primed = true
		b.last = now
		return
	}
	if now > b.last {
		b.tokens = math.Min(b.Burst, b.tokens+b.Rate*(now-b.last)/1000)
		b.last = now
	}
}

// TryTake spends n tokens at virtual time now, all or nothing.
func (b *MigrationBudget) TryTake(now float64, n int) bool {
	b.refill(now)
	if float64(n) > b.tokens+eps {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Tokens reports the balance after refilling to virtual time now.
func (b *MigrationBudget) Tokens(now float64) float64 {
	b.refill(now)
	return b.tokens
}

// Hysteresis wraps any Strategy and gates its repair: joins pass
// through untouched, but the inner strategy's reassignments are first
// rehearsed on a sandbox evaluator and applied only when
//
//   - the predicted drop in D is at least MinGain (virtual ms) and at
//     least MinRelGain of the current D, and
//   - the migration budget has a token for every move (all or nothing:
//     a half-applied rebalance can be worse than none).
//
// Suppressed repairs are counted, so a simulation can report both sides
// of the D-vs-churn trade-off.
type Hysteresis struct {
	// Inner is the wrapped strategy.
	Inner Strategy
	// MinGain is the absolute D improvement (virtual ms) a repair must
	// promise to be applied.
	MinGain float64
	// MinRelGain is the same threshold relative to the current D (e.g.
	// 0.05 = the repair must improve D by at least 5%).
	MinRelGain float64
	// Budget, if non-nil, caps the sustained migration rate.
	Budget *MigrationBudget
	// OnSuppress, if non-nil, observes every suppressed repair proposal:
	// the virtual time, the number of moves the proposal would have
	// performed, the predicted D gain it promised, and why it was gated
	// ("gain" or "budget"). Control planes feed this into their flight
	// recorders; the simulator leaves it nil.
	OnSuppress func(now float64, moves int, gain float64, reason string)

	suppressed     int
	suppressedMove int
}

// NewHysteresis wraps inner with the given thresholds. A nil budget
// means the gate is threshold-only.
func NewHysteresis(inner Strategy, minGain, minRelGain float64, budget *MigrationBudget) *Hysteresis {
	return &Hysteresis{Inner: inner, MinGain: minGain, MinRelGain: minRelGain, Budget: budget}
}

// Name implements Strategy.
func (h *Hysteresis) Name() string {
	rate := math.Inf(1)
	if h.Budget != nil {
		rate = h.Budget.Rate
	}
	return fmt.Sprintf("Hysteresis(%s, gain≥%.3gms, rel≥%.3g, rate=%.3g/s)",
		h.Inner.Name(), h.MinGain, h.MinRelGain, rate)
}

// PlaceJoin implements Strategy: joins are mandatory, so they are never
// gated.
func (h *Hysteresis) PlaceJoin(ev *core.Evaluator, caps core.Capacities, client int) int {
	return h.Inner.PlaceJoin(ev, caps, client)
}

// Repair implements Strategy. The inner repair runs on a sandbox copy
// of the evaluator; the resulting assignment diff is the migration
// proposal, applied to the real evaluator only when it clears the gain
// thresholds and the budget covers every move.
//
// Stateful inner strategies (e.g. PeriodicReoptimize's period clock)
// advance even when the proposal is suppressed: a deferred rebalance is
// re-attempted on the strategy's own schedule, not retried every event.
func (h *Hysteresis) Repair(ev *core.Evaluator, caps core.Capacities, now float64) int {
	sandbox, err := ev.Instance().NewEvaluator(ev.Assignment())
	if err != nil {
		return 0
	}
	before := ev.D()
	if h.Inner.Repair(sandbox, caps, now) == 0 {
		return 0
	}
	proposal := sandbox.Assignment()
	moves := 0
	for c, s := range proposal {
		if ev.ServerOf(c) != s {
			moves++
		}
	}
	if moves == 0 {
		return 0
	}
	gain := before - sandbox.D()
	if gain < h.MinGain-eps || gain < h.MinRelGain*before-eps {
		h.suppress(now, moves, gain, "gain")
		return 0
	}
	if h.Budget != nil && !h.Budget.TryTake(now, moves) {
		h.suppress(now, moves, gain, "budget")
		return 0
	}
	for c, s := range proposal {
		if ev.ServerOf(c) != s {
			ev.Move(c, s)
		}
	}
	return moves
}

// suppress counts one gated proposal and notifies the observer.
func (h *Hysteresis) suppress(now float64, moves int, gain float64, reason string) {
	h.suppressed++
	h.suppressedMove += moves
	if h.OnSuppress != nil {
		h.OnSuppress(now, moves, gain, reason)
	}
}

// Suppressed reports how many repair proposals the gate rejected and
// how many individual migrations those proposals would have performed.
func (h *Hysteresis) Suppressed() (proposals, moves int) {
	return h.suppressed, h.suppressedMove
}
