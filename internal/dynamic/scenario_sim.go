package dynamic

import (
	"cmp"
	"errors"
	"fmt"
	"sort"

	"diacap/internal/core"
)

// ScenarioResult scores one strategy over one scenario.
type ScenarioResult struct {
	Result
	// ForcedMoves counts failover reassignments: clients evacuated from
	// killed servers. They are disruption the strategy did not choose,
	// so they are tracked apart from RepairMoves.
	ForcedMoves int
	// KillsApplied and Restarts count processed failure events.
	KillsApplied, Restarts int
	// DriftSteps counts instance re-materializations from drifted
	// coordinates.
	DriftSteps int
	// SuppressedProposals and SuppressedMoves mirror Hysteresis
	// counters when the strategy is hysteresis-wrapped (zero otherwise).
	SuppressedProposals, SuppressedMoves int
}

// scenario event stream: churn, kills, restarts, and drift snapshots
// merged into one time-ordered tape.
type scenKind int

const (
	scenLeave   scenKind = iota // leaves first at ties: frees capacity
	scenRestart                 // then restarts: adds capacity
	scenKill                    // then kills: evacuations see restarts
	scenJoin                    // then joins
	scenDrift                   // drift last: D recorded on the new geometry
)

type scenEvent struct {
	time float64
	kind scenKind
	id   int // client, server, or snapshot index depending on kind
}

// SimulateScenario replays a finalized scenario against a strategy.
//
// Server kills become capacity: a dead server's effective capacity is
// zero, its clients are evacuated through the strategy's own PlaceJoin
// (counted as ForcedMoves), and joins and repairs run against the
// degraded capacities until the restart. Drift snapshots swap the
// evaluator onto the re-materialized instance while preserving the
// assignment — the strategies read geometry through the evaluator, so
// the same strategy values keep running across snapshots.
//
// After every event the capacity invariant is re-checked; a violation
// is a bug in the strategy (or this simulator) and fails the run with a
// typed error rather than corrupting results. Bursts that exceed total
// remaining capacity fail with ErrCapacityExhausted.
func SimulateScenario(sc *Scenario, caps core.Capacities, strat Strategy) (*ScenarioResult, error) {
	if sc == nil || strat == nil {
		return nil, errors.New("dynamic: nil scenario or strategy")
	}
	if !sc.finalized {
		return nil, fmt.Errorf("dynamic: scenario %s not finalized", sc.Name)
	}
	in := sc.Pop.Instance
	if caps != nil {
		if err := in.ValidateCapacities(caps); err != nil {
			return nil, err
		}
	}

	tape := make([]scenEvent, 0, len(sc.Events)+2*len(sc.Kills)+len(sc.Snapshots))
	for i, e := range sc.Events {
		k := scenJoin
		if e.Kind == Leave {
			k = scenLeave
		}
		tape = append(tape, scenEvent{time: e.Time, kind: k, id: i})
	}
	for i, k := range sc.Kills {
		tape = append(tape, scenEvent{time: k.Time, kind: scenKill, id: i})
		if k.RestartAt > k.Time && k.RestartAt < sc.Horizon {
			tape = append(tape, scenEvent{time: k.RestartAt, kind: scenRestart, id: i})
		}
	}
	for i, s := range sc.Snapshots {
		tape = append(tape, scenEvent{time: s.Time, kind: scenDrift, id: i})
	}
	sort.SliceStable(tape, func(i, j int) bool {
		if c := cmp.Compare(tape[i].time, tape[j].time); c != 0 {
			return c < 0
		}
		return tape[i].kind < tape[j].kind
	})

	ev, err := in.NewEvaluator(core.NewAssignment(in.NumClients()))
	if err != nil {
		return nil, err
	}
	// Per-event D maintenance through the incremental engine: identical
	// values bit-for-bit (see the core differential tests), but each
	// churn event costs a bounded repair instead of an O(U²) recompute.
	ev.EnableIncremental()
	res := &ScenarioResult{Result: Result{Strategy: strat.Name()}}

	alive := make([]bool, in.NumServers())
	for k := range alive {
		alive[k] = true
	}
	deadCount := 0
	// effCaps is the strategy-visible capacity vector: caller caps with
	// dead servers clamped to zero. Nil while nothing is dead and the
	// caller passed nil (unlimited).
	effCaps := caps
	rebuildCaps := func() {
		if deadCount == 0 {
			effCaps = caps
			return
		}
		effCaps = make(core.Capacities, in.NumServers())
		for k := range effCaps {
			switch {
			case !alive[k]:
				effCaps[k] = 0
			case caps != nil:
				effCaps[k] = caps[k]
			default:
				effCaps[k] = in.NumClients()
			}
		}
	}

	prevT, prevD := 0.0, 0.0
	var integral float64
	record := func(t, d float64) {
		integral += prevD * (t - prevT)
		prevT, prevD = t, d
		if d > res.MaxD {
			res.MaxD = d
		}
		res.Timeline = append(res.Timeline, TimelinePoint{Time: t, D: d})
	}
	// place runs the strategy's join path with full validation; forced
	// marks kill evacuations (which tolerate an already-placed caller).
	place := func(c int, t float64, forced bool) error {
		s := strat.PlaceJoin(ev, effCaps, c)
		if s < 0 {
			if !anyCapacityLeft(ev, effCaps) {
				return fmt.Errorf("dynamic: %s: %s of client %d at t=%.1f: %w",
					strat.Name(), joinWord(forced), c, t, ErrCapacityExhausted)
			}
			return fmt.Errorf("dynamic: %s returned server %d for %s", strat.Name(), s, joinWord(forced))
		}
		if s >= in.NumServers() {
			return fmt.Errorf("dynamic: %s returned server %d for %s", strat.Name(), s, joinWord(forced))
		}
		if effCaps != nil && ev.Load(s) >= effCaps[s] {
			return fmt.Errorf("dynamic: %s placed a %s on saturated server %d", strat.Name(), joinWord(forced), s)
		}
		ev.Move(c, s)
		return nil
	}
	checkInvariant := func(t float64) error {
		for k := 0; k < in.NumServers(); k++ {
			if !alive[k] && ev.Load(k) > 0 {
				return fmt.Errorf("dynamic: %s left %d clients on dead server %d at t=%.1f",
					strat.Name(), ev.Load(k), k, t)
			}
			if effCaps != nil && ev.Load(k) > effCaps[k] {
				return fmt.Errorf("dynamic: %s: capacity violation on server %d at t=%.1f: load %d > cap %d",
					strat.Name(), k, t, ev.Load(k), effCaps[k])
			}
		}
		return nil
	}

	for _, te := range tape {
		if te.time > sc.Horizon {
			break
		}
		switch te.kind {
		case scenJoin, scenLeave:
			e := sc.Events[te.id]
			if e.Client < 0 || e.Client >= in.NumClients() {
				return nil, fmt.Errorf("dynamic: event client %d out of range", e.Client)
			}
			if te.kind == scenJoin {
				if ev.ServerOf(e.Client) != core.Unassigned {
					return nil, fmt.Errorf("dynamic: client %d joined twice", e.Client)
				}
				if err := place(e.Client, e.Time, false); err != nil {
					return nil, err
				}
				res.Joins++
			} else {
				if ev.ServerOf(e.Client) == core.Unassigned {
					return nil, fmt.Errorf("dynamic: client %d left while inactive", e.Client)
				}
				ev.Move(e.Client, core.Unassigned)
				res.Leaves++
			}
		case scenKill:
			k := sc.Kills[te.id].Server
			if !alive[k] {
				break // double kill in overlapping storms: idempotent
			}
			alive[k] = false
			deadCount++
			rebuildCaps()
			res.KillsApplied++
			// Evacuate in ascending client order for determinism.
			for c := 0; c < in.NumClients(); c++ {
				if ev.ServerOf(c) != k {
					continue
				}
				ev.Move(c, core.Unassigned)
				if err := place(c, te.time, true); err != nil {
					return nil, err
				}
				res.ForcedMoves++
			}
		case scenRestart:
			k := sc.Kills[te.id].Server
			if alive[k] {
				break
			}
			alive[k] = true
			deadCount--
			rebuildCaps()
			res.Restarts++
		case scenDrift:
			snap := sc.Snapshots[te.id]
			fresh, err := snap.Instance.NewEvaluator(ev.Assignment())
			if err != nil {
				return nil, fmt.Errorf("dynamic: drift snapshot at t=%.1f: %w", snap.Time, err)
			}
			fresh.EnableIncremental()
			ev = fresh
			res.DriftSteps++
		}
		res.RepairMoves += strat.Repair(ev, effCaps, te.time)
		if err := checkInvariant(te.time); err != nil {
			return nil, err
		}
		record(te.time, ev.D())
	}
	integral += prevD * (sc.Horizon - prevT)
	res.TimeAvgD = integral / sc.Horizon
	res.FinalD = ev.D()
	if h, ok := strat.(*Hysteresis); ok {
		res.SuppressedProposals, res.SuppressedMoves = h.Suppressed()
	}
	return res, nil
}

func joinWord(forced bool) string {
	if forced {
		return "forced rejoin"
	}
	return "join"
}
