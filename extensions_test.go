package diacap_test

import (
	"testing"

	"diacap"
)

func TestPublicExtensions(t *testing.T) {
	m := diacap.SyntheticInternet(60, 8)
	servers, err := diacap.PlaceServers(diacap.KCenterB, m, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := diacap.NewInstance(m, servers, diacap.AllNodes(m))
	if err != nil {
		t.Fatal(err)
	}
	extras := []diacap.Algorithm{
		diacap.SingleServer(),
		diacap.RandomAssignment(1),
		diacap.TwoPhase(),
		diacap.LocalSearch(),
		diacap.GreedyPlainDeltaAblation(),
	}
	for _, alg := range extras {
		a, err := alg.Assign(inst, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := inst.Validate(a); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
	}
}

func TestPublicTransitStub(t *testing.T) {
	m, err := diacap.TransitStub(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() < 100 {
		t.Fatalf("TransitStub returned %d nodes, want ≥ 100", m.Len())
	}
	// Metric substrate: Theorem 2's 3-approximation should hold against
	// the exact optimum on a small slice of it.
	sub := m.Submatrix(diacap.AllNodes(m)[:12])
	inst, err := diacap.NewInstance(sub, []int{0, 1, 2}, []int{3, 4, 5, 6, 7, 8, 9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	ns, err := diacap.NearestServer().Assign(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := diacap.BruteForceOptimal().Assign(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.MaxInteractionPath(ns) > 3*inst.MaxInteractionPath(opt)+1e-9 {
		t.Fatalf("Theorem 2 violated on metric data: NS %v > 3×opt %v",
			inst.MaxInteractionPath(ns), 3*inst.MaxInteractionPath(opt))
	}
}

func TestPublicAblationFigures(t *testing.T) {
	opts := diacap.BenchOptions{Matrix: diacap.SyntheticInternet(50, 9), Seed: 2, Runs: 2}
	for _, gen := range []func(diacap.BenchOptions, []int) (*diacap.FigureResult, error){
		diacap.AblationGreedyCost,
		diacap.AblationDGInitial,
		diacap.AblationBaselines,
	} {
		fig, err := gen(opts, []int{4})
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Series) == 0 {
			t.Fatal("ablation figure has no series")
		}
	}
}
