package diacap_test

// Godoc examples: runnable documentation for the public API. Every
// example is deterministic (fixed seeds) so its Output block is verified
// by `go test`.

import (
	"fmt"

	"diacap"
)

// Example_assign is the core workflow: place servers, assign clients,
// read off the minimum feasible interaction time.
func Example_assign() {
	m := diacap.SyntheticInternet(100, 7)
	servers, _ := diacap.PlaceServers(diacap.KCenterB, m, 6, nil)
	inst, _ := diacap.NewInstance(m, servers, diacap.AllNodes(m))

	nearest, _ := diacap.NearestServer().Assign(inst, nil)
	greedy, _ := diacap.Greedy().Assign(inst, nil)

	fmt.Printf("Nearest-Server D/LB: %.2f\n", inst.NormalizedInteractivity(nearest))
	fmt.Printf("Greedy         D/LB: %.2f\n", inst.NormalizedInteractivity(greedy))
	fmt.Println(inst.MaxInteractionPath(greedy) < inst.MaxInteractionPath(nearest))
	// Output:
	// Nearest-Server D/LB: 1.35
	// Greedy         D/LB: 1.26
	// true
}

// Example_offsets shows the Section II-C machinery: δ = D is feasible
// with the computed simulation-time offsets, and the DIA runtime verifies
// it end to end.
func Example_offsets() {
	m := diacap.SyntheticInternet(40, 3)
	servers, _ := diacap.PlaceServers(diacap.KCenterB, m, 4, nil)
	inst, _ := diacap.NewInstance(m, servers, diacap.AllNodes(m))
	a, _ := diacap.DistributedGreedy().Assign(inst, nil)
	off, _ := inst.ComputeOffsets(a)

	res, _ := diacap.SimulateDIA(diacap.DIAConfig{
		Instance:   inst,
		Assignment: a,
		Delta:      off.D,
		Offsets:    off,
		Workload:   diacap.UniformWorkload(inst.NumClients(), 50, 0, 2),
	})
	fmt.Println("clean:", res.Clean())
	withinEps := func(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }
	fmt.Println("interaction == delta:",
		withinEps(res.MaxInteraction, off.D) && withinEps(res.MeanInteraction, off.D))
	// Output:
	// clean: true
	// interaction == delta: true
}

// Example_setCover demonstrates the NP-completeness reduction of
// Theorem 1: a set cover of size ≤ K becomes an assignment with D ≤ 3.
func Example_setCover() {
	src := &diacap.SetCover{
		NumElements: 4,
		Subsets:     [][]int{{0}, {1}, {2, 3}}, // the paper's Fig. 3
	}
	r, _ := diacap.ReduceSetCover(src, 3)
	a, _ := r.AssignmentFromCover([]int{0, 1, 2})
	fmt.Println("D ≤ 3:", r.Inst.MaxInteractionPath(a) <= 3)
	cover, _ := r.CoverFromAssignment(a)
	fmt.Println("cover:", cover)
	// Output:
	// D ≤ 3: true
	// cover: [0 1 2]
}

// Example_capacitated shows Section IV-E: the same algorithms under
// per-server capacity limits.
func Example_capacitated() {
	m := diacap.SyntheticInternet(60, 2)
	servers, _ := diacap.PlaceServers(diacap.KCenterA, m, 4, nil)
	inst, _ := diacap.NewInstance(m, servers, diacap.AllNodes(m))
	caps := diacap.UniformCapacities(inst.NumServers(), 20)

	a, _ := diacap.DistributedGreedy().Assign(inst, caps)
	fmt.Println("capacities respected:", inst.CheckCapacities(a, caps) == nil)
	// Output:
	// capacities respected: true
}
